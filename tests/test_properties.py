"""Seeded property-based tests.

Two kinds of properties:

* **Differential**: a pseudo-random workload of ACL edits, segment
  creates/deletes, cross-user references, and privileged-gate probes is
  replayed — same seed — against the legacy supervisor and the security
  kernel.  The paper's claim is that shrinking the kernel changes where
  the reference monitor lives, not what it decides: both systems must
  produce the identical sequence of grant/deny outcomes, and on the
  kernel every deny must land in the bounded audit trail the moment it
  happens.

* **Model-based** (hypothesis): random operation sequences against
  :class:`repro.kernel.locks.KernelLock` checked against a brute-force
  model of its invariants.  Derandomized, so the suite stays a pure
  function of the code.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro import MulticsSystem, kernel_config, legacy_config
from repro.errors import KernelDenial, ReproError
from repro.faults.harness import harness_config, security_decisions
from repro.faults.plan import FaultPlan, FaultSpec
from repro.kernel.locks import KernelLock

SEEDS = [7, 19, 1975]
N_OPS = 40


def _boot(config) -> MulticsSystem:
    system = MulticsSystem(config).boot()
    system.register_user("Alice", "Crypto", "alice-pw")
    system.register_user("Eve", "Spies", "eve-pw")
    return system


def random_workload(system: MulticsSystem, seed: int,
                    n_ops: int = N_OPS,
                    check_trail: bool = False) -> list[tuple[str, str]]:
    """Replay the seed's operation sequence; returns the normalized
    (operation, outcome) trace.  With ``check_trail`` every deny must
    be visible in the audit trail immediately after it is raised."""
    rng = random.Random(seed)
    alice = system.login("Alice", "Crypto", "alice-pw")
    eve = system.login("Eve", "Spies", "eve-pw")
    # Let Eve reach (traverse) Alice's home so segment ACLs — which the
    # workload edits — decide her accesses, not the directory walls.
    alice.set_acl(">udd>Crypto", "Eve.Spies", "r")
    alice.set_acl(alice.home_path, "Eve.Spies", "r")

    segments: list[str] = []   # names alive in Alice's home
    trace: list[tuple[str, str]] = []
    counter = 0

    def attempt(op: str, thunk) -> None:
        before = system.audit_trail.denials
        try:
            thunk()
            outcome = "granted"
        except KernelDenial as exc:
            outcome = type(exc).__name__
        except ReproError as exc:     # ring/hardware refusals
            outcome = type(exc).__name__
        trace.append((op, outcome))
        if check_trail and outcome != "granted":
            assert system.audit_trail.denials > before, (
                f"{op} was refused ({outcome}) without a trail record"
            )

    for _ in range(n_ops):
        roll = rng.random()
        if roll < 0.30 or not segments:
            name = f"s{counter}"
            counter += 1
            pages = rng.randint(1, 3)
            segments.append(name)
            attempt(f"create {name}",
                    lambda n=name, p=pages: alice.create_segment(n, n_pages=p))
        elif roll < 0.45:
            name = rng.choice(segments)
            segments.remove(name)
            attempt(f"delete {name}", lambda n=name: alice.delete(n))
        elif roll < 0.65:
            name = rng.choice(segments)
            mode = rng.choice(["r", "rw"])
            attempt(f"acl {name} Eve {mode}",
                    lambda n=name, m=mode: alice.set_acl(n, "Eve.Spies", m))
        elif roll < 0.85:
            name = rng.choice(segments)
            attempt(f"eve initiate {name}",
                    lambda n=name: eve.initiate(f"{alice.home_path}>{n}"))
        else:
            # A user-ring probe of a privileged gate: always refused,
            # by the ring hardware (6180) or the gate check (645).
            attempt("probe proc_list", lambda: alice.call("hcs_$proc_list"))
    return trace


class TestDifferentialSupervisors:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_both_supervisors_decide_identically(self, seed):
        kernel_trace = random_workload(_boot(kernel_config()), seed)
        legacy_trace = random_workload(_boot(legacy_config()), seed)
        assert kernel_trace == legacy_trace
        # The seed must actually exercise both halves of the property.
        outcomes = {o for _, o in kernel_trace}
        assert "granted" in outcomes
        assert outcomes - {"granted"}, "seed produced no denials"

    @pytest.mark.parametrize("seed", SEEDS)
    def test_every_deny_reaches_the_trail_as_it_happens(self, seed):
        random_workload(_boot(kernel_config()), seed, check_trail=True)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_same_seed_same_system_is_invariant(self, seed):
        first = random_workload(_boot(kernel_config()), seed)
        second = random_workload(_boot(kernel_config()), seed)
        assert first == second


class TestFaultedRunsStayDeterministic:
    """Injected faults are part of the seedable state: two boots with
    the same fault plan replay the identical security decisions (the
    cross-supervisor comparison above deliberately excludes faults —
    recovery paths legitimately differ between the two designs)."""

    PLAN = [FaultSpec("memory.transfer", "transfer_error", at_ops=(3, 11))]

    def run_once(self, seed):
        config = harness_config(
            fault_plan=FaultPlan(list(self.PLAN), seed=seed)
        )
        system = _boot(config)
        trace = random_workload(system, seed, n_ops=25)
        return trace, security_decisions(system.audit), system.clock.now

    @pytest.mark.parametrize("seed", [5, 23])
    def test_faulted_workload_reproduces(self, seed):
        assert self.run_once(seed) == self.run_once(seed)


# -- model-based lock properties --------------------------------------

lock_ops = st.lists(
    st.tuples(
        st.sampled_from(["acquire", "hold"]),
        st.integers(min_value=0, max_value=100),   # now / cycles
        st.sampled_from([None, "cpu0", "cpu1", "cpu2"]),
    ),
    max_size=50,
)


@settings(max_examples=200, derandomize=True)
@given(lock_ops)
def test_kernel_lock_invariants(ops):
    lock = KernelLock("ptl")
    acquisitions = contentions = waited = 0
    last_held_until = 0
    for kind, value, owner in ops:
        if kind == "hold":
            lock.hold(value)
        else:
            wait = lock.acquire(now=value, owner=owner)
            acquisitions += 1
            assert wait >= 0
            # Anonymous (serialized DES) acquirers never wait.
            if owner is None:
                assert wait == 0
            # A waiter leaves holding the lock: its critical section
            # starts when the previous owner's window ends.
            if wait:
                contentions += 1
                waited += wait
                assert lock.held_until == value + wait
        assert lock.held_until >= last_held_until
        last_held_until = lock.held_until
    assert lock.acquisitions == acquisitions
    assert lock.contentions == contentions
    assert lock.contention_cycles == waited


@settings(max_examples=100, derandomize=True)
@given(st.integers(min_value=0, max_value=1000),
       st.integers(min_value=0, max_value=1000),
       st.integers(min_value=0, max_value=1000))
def test_kernel_lock_wait_equals_remaining_window(start, hold, later):
    lock = KernelLock("ptl")
    lock.acquire(now=start, owner="a")
    lock.hold(hold)
    wait = lock.acquire(now=start + later, owner="b")
    assert wait == max(0, hold - later)


# ---------------------------------------------------------------------------
# Specialized kernels: grants are exactly (full-kernel grants ∩ profile)
# ---------------------------------------------------------------------------

#: Read-only probes against a shared booted kernel system.  Each is
#: (gate, args-builder) where the builder receives the root segno.
_PROBES = [
    ("hcs_$get_root", lambda root: ()),
    ("hcs_$list_kst", lambda root: ()),
    ("hcs_$get_quota", lambda root: (root,)),
    ("hcs_$status", lambda root: (root, "udd")),
    ("hcs_$acl_list", lambda root: (root, "udd")),
    ("hcs_$get_uid", lambda root: (root,)),
    ("net_$status", lambda root: ()),
    ("net_$attach", lambda root: ()),
    # Denied by the *full* kernel (no such entry): an in-profile gate
    # must reproduce the denial, not mask it.
    ("hcs_$get_bit_count", lambda root: (root, "no_such_entry")),
    # Ring-denied on any kernel: the stub's brackets must fire first.
    ("hcs_$set_quota", lambda root: (root, 10**9)),
]

_PROBE_GATES = sorted({gate for gate, _ in _PROBES})

_SPECIALIZE_ENV = {}


def _specialize_env() -> dict:
    """One booted kernel system + the full kernel's probe outcomes,
    built lazily and shared across hypothesis examples."""
    if _SPECIALIZE_ENV:
        return _SPECIALIZE_ENV
    system = _boot(kernel_config())
    session = system.login("Alice", "Crypto", "alice-pw")
    root = session.call("hcs_$get_root")
    from repro.kernel.specialize import full_kernel_gates

    user_callable = {
        g.name for g in full_kernel_gates() if g.user_available()
    }
    full_outcomes = {}
    for gate, build in _PROBES:
        full_outcomes[(gate, build)] = _probe(
            system.supervisor, session.process, gate, build(root)
        )
    _SPECIALIZE_ENV.update(
        system=system, session=session, root=root,
        full_outcomes=full_outcomes, user_callable=user_callable,
    )
    return _SPECIALIZE_ENV


def _probe(supervisor, process, gate: str, args: tuple) -> tuple[str, str]:
    try:
        result = supervisor.call(process, gate, *args)
    except ReproError as exc:
        return ("deny", type(exc).__name__)
    return ("ok", repr(result))


@settings(max_examples=50, derandomize=True, deadline=None)
@given(st.sets(st.sampled_from(_PROBE_GATES)))
def test_specialized_kernel_grants_exactly_the_profiled_intersection(subset):
    """For a random gate-subset profile, the specialized kernel grants
    exactly (full-kernel grants ∩ profile); everything else is denied
    by a stub *and* lands in the audit log — differential grant/deny
    trace against the full kernel on the same substrate."""
    from repro.kernel.specialize import GateProfile, SpecializedKernel

    env = _specialize_env()
    system, session = env["system"], env["session"]
    specialized = SpecializedKernel(
        system.services, GateProfile("subset", gates=subset)
    )
    granted_full, granted_spec = set(), set()
    for gate, build in _PROBES:
        full_outcome = env["full_outcomes"][(gate, build)]
        denials_before = len(system.audit.denied())
        spec_outcome = _probe(
            specialized, session.process, gate, build(env["root"])
        )
        if full_outcome[0] == "ok":
            granted_full.add(gate)
        if gate not in env["user_callable"]:
            # Ring brackets survive specialization: the hardware turns
            # the call away before any handler — stub or real — runs.
            assert spec_outcome == full_outcome
            assert spec_outcome != ("deny", "SpecializationDenial")
        elif gate in subset:
            # In profile: byte-identical outcome, grant or deny.
            assert spec_outcome == full_outcome
            if spec_outcome[0] == "ok":
                granted_spec.add(gate)
        else:
            # Out of profile: denial of use, audited through the one
            # funnel (a fresh denied record naming the gate).
            assert spec_outcome == ("deny", "SpecializationDenial")
            denied = system.audit.denied()
            assert len(denied) == denials_before + 1
            assert denied[-1].object == gate
            assert denied[-1].category == "gate"
    assert granted_spec == granted_full & subset
