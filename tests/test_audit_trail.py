"""Tests for the bounded security-audit trail (repro.obs.audit):
ring-buffer mechanics, levels, JSON export, and the completeness
guarantee — every deny raised anywhere appears in the trail."""

import json

import pytest

from repro.errors import AccessDenied, AccessViolation, InvalidArgument
from repro.fs.acl import Acl
from repro.hw.segmentation import AccessMode
from repro.obs import AuditTrail
from repro.security.audit import AuditLog
from repro.security.mac import SecurityLabel
from repro.security.reference_monitor import ReferenceMonitor
from repro.system import MulticsSystem

from tests.test_security_reference_monitor import branch, subject


class TestTrailMechanics:
    def test_rejects_bad_level_and_capacity(self):
        with pytest.raises(ValueError):
            AuditTrail(level="verbose")
        with pytest.raises(ValueError):
            AuditTrail(capacity=0)

    def test_capacity_bound_drops_oldest_and_counts(self):
        trail = AuditTrail(capacity=3)
        for i in range(5):
            trail.record(i, "p", f"o{i}", "r", "granted")
        assert len(trail) == 3
        assert trail.seen == 5
        assert trail.dropped == 2
        # The survivors are the newest, with monotonic seq intact.
        assert [r.object for r in trail.records()] == ["o2", "o3", "o4"]
        assert [r.seq for r in trail.records()] == [3, 4, 5]

    def test_level_deny_keeps_only_refusals(self):
        trail = AuditTrail(level="deny")
        trail.record(1, "p", "o", "r", "granted")
        trail.record(2, "p", "o", "w", "denied", "no")
        trail.record(3, "p", "o", "call", "error", "boom")
        assert len(trail) == 2
        assert trail.denials == 2
        assert all(r.decision != "granted" for r in trail.records())

    def test_level_off_records_nothing(self):
        trail = AuditTrail(level="off")
        trail.record(1, "p", "o", "r", "denied")
        assert len(trail) == 0
        assert trail.seen == 1

    def test_queries(self):
        trail = AuditTrail()
        trail.record(1, "Alice.Crypto", "a", "r", "granted", category="acl")
        trail.record(2, "Eve.Spies", "a", "w", "denied", category="mac")
        assert len(trail.denied()) == 1
        assert len(trail.by_principal("Eve.Spies")) == 1
        assert len(trail.by_category("mac")) == 1

    def test_json_export_round_trips(self):
        trail = AuditTrail(capacity=8)
        trail.record(5, "Alice.Crypto", "data", "rw", "denied",
                     "acl grants only 'r'", ring=4, category="acl")
        doc = json.loads(trail.to_json())
        assert doc["schema"] == "repro.audit/v1"
        assert doc["denials"] == 1
        (rec,) = doc["records"]
        assert rec == {
            "seq": 1, "time": 5, "principal": "Alice.Crypto",
            "object": "data", "action": "rw", "ring": 4,
            "category": "acl", "decision": "denied",
            "detail": "acl grants only 'r'",
        }


class TestLogForwarding:
    """AuditLog is the single funnel: everything it takes reaches the
    attached trail, so nothing can log a denial around the trail."""

    def test_every_log_entry_reaches_the_trail(self):
        trail = AuditTrail()
        log = AuditLog(trail=trail)
        log.log(1, "p", "o", "r", "granted")
        log.log(2, "p", "o", "w", "denied", "no", ring=4, category="mac")
        assert trail.seen == 2
        assert trail.denials == 1
        rec = trail.denied()[0]
        assert rec.ring == 4 and rec.category == "mac"

    def test_monitor_denials_land_in_trail_with_category(self):
        trail = AuditTrail()
        rm = ReferenceMonitor(audit=AuditLog(trail=trail))
        with pytest.raises(AccessDenied):
            rm.check(subject(), branch(acl=Acl.make(("*.*.*", "r"))),
                     AccessMode.W, ring=4)
        with pytest.raises(AccessDenied):
            rm.check(subject(level=0), branch(label=SecurityLabel(2)),
                     AccessMode.R)
        with pytest.raises(AccessDenied):
            rm.check(subject(level=2), branch(label=SecurityLabel(0)),
                     AccessMode.W)
        assert len(rm.audit.denied()) == 3
        assert [r.category for r in trail.denied()] == ["acl", "mac", "mac"]
        assert trail.denied()[0].ring == 4


class TestSystemCompleteness:
    """Replayed deny scenarios against a booted system: each refusal in
    the kernel's AuditLog has a matching trail record."""

    def make_system(self, **overrides):
        from repro import kernel_config

        system = MulticsSystem(kernel_config(**overrides)).boot()
        system.register_user("Alice", "Crypto", "alice-pw")
        system.register_user("Eve", "Spies", "eve-pw")
        return system

    def provoke_denials(self, system):
        alice = system.login("Alice", "Crypto", "alice-pw")
        eve = system.login("Eve", "Spies", "eve-pw")
        segno = alice.create_segment("secret")
        alice.write_words(segno, [7])
        alice.set_acl("secret", "Alice.Crypto", "rw")
        # ACL denial: Eve initiates Alice's segment.
        with pytest.raises(AccessDenied):
            eve.initiate(f"{alice.home_path}>secret")
        # Argument denial: malformed gate argument.
        with pytest.raises(InvalidArgument):
            alice.call("hcs_$initiate", -1, "secret")
        # Ring denial: a user-ring call to a privileged gate.
        with pytest.raises(AccessViolation):
            alice.call("hcs_$proc_list")
        return alice, eve

    def test_every_deny_has_a_trail_record(self):
        system = self.make_system()
        self.provoke_denials(system)
        log_denied = [r for r in system.audit.records
                      if r.outcome != "granted"]
        trail_denied = system.audit_trail.denied()
        assert len(log_denied) >= 3
        assert len(trail_denied) == len(log_denied)
        for log_rec, trail_rec in zip(log_denied, trail_denied):
            assert (log_rec.time, log_rec.subject, log_rec.object,
                    log_rec.outcome) == (
                trail_rec.time, trail_rec.principal, trail_rec.object,
                trail_rec.decision)

    def test_deny_level_trail_holds_no_grants(self):
        system = self.make_system(audit_level="deny")
        # A grants-only run: login and legitimate work.
        alice = system.login("Alice", "Crypto", "alice-pw")
        segno = alice.create_segment("mine")
        alice.write_words(segno, [1])
        assert alice.read_words(segno, 1) == [1]
        trail = system.audit_trail
        assert all(r.decision != "granted" for r in trail.records())
        # The kernel's own log still saw the grants.
        assert any(r.outcome == "granted" for r in system.audit.records)

    def test_trail_wraparound_on_a_live_system(self):
        """A system whose workload overflows the trail's ring buffer:
        sequence numbers stay strictly monotonic past the wrap, the
        export stays well-formed, and the books still balance."""
        system = self.make_system(audit_capacity=16)
        self.provoke_denials(system)
        alice = system.login("Alice", "Crypto", "alice-pw")
        for i in range(30):  # plenty of granted decisions past capacity
            alice.create_segment(f"wrap{i}")
        trail = system.audit_trail
        assert trail.seen > trail.capacity
        assert trail.dropped > 0
        assert len(trail.records()) == trail.capacity
        seqs = [r.seq for r in trail.records()]
        assert seqs == sorted(seqs)
        assert len(set(seqs)) == len(seqs)
        assert seqs[-1] == trail.seen  # nothing skipped the funnel
        # The export survives the wrap: schema intact, records complete.
        doc = json.loads(trail.to_json())
        assert doc["schema"] == "repro.audit/v1"
        assert doc["seen"] == trail.seen
        assert doc["dropped"] == trail.dropped
        assert len(doc["records"]) == trail.capacity
        assert [r["seq"] for r in doc["records"]] == seqs
        required = {"seq", "time", "principal", "object", "action",
                    "ring", "category", "decision", "detail"}
        assert all(required <= set(r) for r in doc["records"])

    def test_revocation_sweeps_are_recorded(self):
        system = self.make_system()
        alice = system.login("Alice", "Crypto", "alice-pw")
        alice.create_segment("shared")
        alice.set_acl("shared", "Eve.Spies", "r")
        revocations = system.audit_trail.by_category("revocation")
        assert revocations
        assert all(r.action == "revoke" for r in revocations)
