"""The multi-node topology: routing, transit faults, and metrics."""

import pytest

from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan, FaultSpec
from repro.hw.clock import Simulator
from repro.hw.interrupts import InterruptController
from repro.io.buffers import CircularBuffer
from repro.io.network import NetworkAttachment
from repro.io.topology import (
    ATTACHMENT_HOST,
    DEFAULT_SPEC,
    Link,
    NetworkTopology,
    validate_spec,
)
from repro.faults.harness import harness_config
from repro.obs import MetricsRegistry
from repro.system import MulticsSystem


def _net(injector=None):
    sim = Simulator()
    ic = InterruptController(sim.clock)
    net = NetworkAttachment(
        sim, ic, line=6, buffer=CircularBuffer(64), injector=injector,
    )
    return sim, net


def _topology(spec=None, injector=None, metrics=None):
    sim, net = _net(injector)
    return sim, net, NetworkTopology.build(
        spec, sim, net, injector=injector, metrics=metrics
    )


# ---------------------------------------------------------------------------
# spec validation
# ---------------------------------------------------------------------------

class TestSpecValidation:
    def test_default_spec_is_valid(self):
        validate_spec(DEFAULT_SPEC)

    @pytest.mark.parametrize("spec,fragment", [
        ("not a dict", "must be a dict"),
        ({"hosts": [], "links": [], "extra": 1}, "unknown keys"),
        ({"hosts": "remote", "links": []}, "list of names"),
        ({"hosts": [ATTACHMENT_HOST], "links": []}, "reserved"),
        ({"hosts": ["r"], "links": []}, "at least one link"),
        ({"hosts": ["r"], "links": ["x"]}, "must be a dict"),
        ({"hosts": ["r"], "links": [{"name": "l", "a": "r"}]}, "'b'"),
        ({"hosts": ["r"], "links": [
            {"name": "l", "a": "r", "b": ATTACHMENT_HOST},
            {"name": "l", "a": "r", "b": ATTACHMENT_HOST},
        ]}, "duplicate link"),
        ({"hosts": ["r"], "links": [
            {"name": "l", "a": "ghost", "b": ATTACHMENT_HOST},
        ]}, "not a host"),
    ])
    def test_malformed_specs_rejected(self, spec, fragment):
        with pytest.raises(ValueError, match=fragment):
            validate_spec(spec)

    def test_unreachable_host_rejected_at_build(self):
        spec = {
            "hosts": ["near", "island"],
            "links": [{"name": "l", "a": "near", "b": ATTACHMENT_HOST}],
        }
        validate_spec(spec)  # shape is fine; connectivity is build-time
        with pytest.raises(ValueError, match="cannot reach"):
            _topology(spec)

    def test_config_validate_rejects_bad_topology(self):
        config = harness_config(topology={"hosts": 7})
        with pytest.raises(ValueError, match="list of names"):
            config.validate()

    def test_link_parameter_validation(self):
        with pytest.raises(ValueError, match="latency"):
            Link("l", "a", "b", latency=-1)
        with pytest.raises(ValueError, match="windows"):
            Link("l", "a", "b", flap_cycles=0)


# ---------------------------------------------------------------------------
# routing
# ---------------------------------------------------------------------------

DIAMOND = {
    "hosts": ["east", "west", "relay"],
    "links": [
        {"name": "east_up", "a": "east", "b": ATTACHMENT_HOST},
        {"name": "west_relay", "a": "west", "b": "relay"},
        {"name": "relay_up", "a": "relay", "b": ATTACHMENT_HOST},
        {"name": "west_east", "a": "west", "b": "east"},
    ],
}


class TestRouting:
    def test_direct_route(self):
        _, _, topo = _topology(DIAMOND)
        assert [l.name for l in topo.route("east")] == ["east_up"]

    def test_multi_hop_route_is_shortest(self):
        _, _, topo = _topology(DIAMOND)
        # Two 2-hop paths exist; BFS with insertion order picks the
        # first-registered one, deterministically.
        assert [l.name for l in topo.route("west")] == [
            "west_relay", "relay_up",
        ]

    def test_unknown_host_raises(self):
        _, _, topo = _topology(DIAMOND)
        with pytest.raises(ValueError, match="unknown host"):
            topo.route("nowhere")

    def test_busiest_link_by_attempts_ties_by_name(self):
        _, _, topo = _topology(DIAMOND)
        assert topo.busiest_link().name == "east_up"  # all zero: first name
        topo.send("west", "m")  # west_relay and relay_up get attempts
        assert topo.busiest_link().name == "relay_up"

    def test_duplicate_hosts_and_links_rejected(self):
        _, _, topo = _topology(DIAMOND)
        with pytest.raises(ValueError, match="duplicate host"):
            topo.add_host("east")
        with pytest.raises(ValueError, match="duplicate link"):
            topo.add_link("east_up", "east", ATTACHMENT_HOST)


# ---------------------------------------------------------------------------
# transit behaviour
# ---------------------------------------------------------------------------

class TestTransit:
    def test_clean_send_arrives_at_attachment(self):
        sim, net, topo = _topology(DIAMOND)
        assert topo.send("west", "hello") is True
        sim.run()
        msg = net.receive()
        assert msg.body == "hello"
        assert msg.host == "west"

    def test_latency_accumulates_across_hops(self):
        sim, net, topo = _topology(DIAMOND)
        topo.send("west", "slow")   # two hops at 20 cycles each
        topo.send("east", "fast")   # one hop
        # NetworkAttachment adds its own delivery latency after transit,
        # so just assert arrival order: fewer hops arrives first.
        sim.run()
        assert net.receive().body == "fast"
        assert net.receive().body == "slow"

    def test_force_drop_condemns_next_transit(self):
        sim, net, topo = _topology(DIAMOND)
        topo.links["east_up"].force_drop()
        assert topo.send("east", "doomed") is False
        assert topo.send("east", "fine") is True
        assert topo.lost == 1
        sim.run()
        assert net.receive().body == "fine"
        assert net.receive() is None

    def test_partition_downs_link_for_window(self):
        sim, net, topo = _topology(DIAMOND)
        link = topo.links["east_up"]
        link.partition(sim.clock.now, cycles=500)
        assert link.down(sim.clock.now)
        assert topo.send("east", "blocked") is False
        assert link.partition_drops == 1
        sim.clock.advance(501)
        assert not link.down(sim.clock.now)
        assert topo.send("east", "after") is True

    def test_flap_is_a_short_partition(self):
        sim, _, topo = _topology(DIAMOND)
        link = topo.links["east_up"]
        link.flap(sim.clock.now)
        assert link.down(sim.clock.now)
        assert link.flaps == 1
        sim.clock.advance(link.flap_cycles + 1)
        assert not link.down(sim.clock.now)

    def test_spike_window_raises_latency(self):
        sim, _, topo = _topology(DIAMOND)
        link = topo.links["east_up"]
        link.spike(sim.clock.now)
        survived, latency = link.transit(sim.clock.now)
        assert survived
        assert latency == link.latency + link.spike_cycles
        assert link.latency_spikes == 1

    def test_injected_drop_loses_message(self):
        injector = FaultInjector(FaultPlan(
            [FaultSpec("link.east_up", "drop", at_ops=(1,))], seed=1,
        ))
        sim, net, topo = _topology(DIAMOND, injector=injector)
        assert topo.send("east", "gone") is False
        assert topo.send("east", "kept") is True
        assert injector.injected_count == 1
        sim.run()
        assert net.receive().body == "kept"
        assert net.receive() is None

    def test_injected_partition_takes_link_down(self):
        injector = FaultInjector(FaultPlan(
            [FaultSpec("link.east_up", "partition", at_ops=(1,))], seed=1,
        ))
        sim, _, topo = _topology(DIAMOND, injector=injector)
        # The triggering transit itself is lost to the new outage.
        assert topo.send("east", "trigger") is False
        assert topo.links["east_up"].down(sim.clock.now)

    def test_loss_is_total_never_corrupting(self):
        injector = FaultInjector(FaultPlan(
            [FaultSpec("link.east_up", "drop", rate=0.5)], seed=7,
        ))
        sim, net, topo = _topology(DIAMOND, injector=injector)
        sent = [f"msg-{i}" for i in range(40)]
        survived = {m for m in sent if topo.send("east", m)}
        sim.run()
        received = set()
        while (msg := net.receive()) is not None:
            received.add(msg.body)
        # Every received body is a sent body, intact; exactly the
        # survivors arrive.  Denial of use, never wrong data.
        assert received == survived
        assert topo.lost == len(sent) - len(survived) > 0


# ---------------------------------------------------------------------------
# metrics and reporting
# ---------------------------------------------------------------------------

class TestTopologyMetrics:
    def test_aggregate_metrics_register_and_count(self):
        metrics = MetricsRegistry()
        sim, _, topo = _topology(DIAMOND, metrics=metrics)
        topo.send("west", "m")
        topo.links["east_up"].partition(sim.clock.now)
        snap = metrics.snapshot()
        assert snap["gauges"]["net.link.links"] == 4
        assert snap["counters"]["net.link.attempts"] == 2
        assert snap["counters"]["net.link.delivered"] == 2
        assert snap["counters"]["net.link.partitions"] == 1
        assert snap["gauges"]["net.link.down"] == 1

    def test_link_report_is_per_link_and_sorted(self):
        _, _, topo = _topology(DIAMOND)
        topo.send("east", "m")
        report = topo.link_report()
        assert list(report) == sorted(report)
        assert report["east_up"]["attempts"] == 1
        assert report["west_relay"]["attempts"] == 0

    def test_booted_system_always_has_topology(self):
        system = MulticsSystem(harness_config()).boot()
        topo = system.topology
        assert list(topo.links) == ["uplink"]
        assert "net.link.attempts" in system.metrics.names()
        system.shutdown()
