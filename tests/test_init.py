"""Tests for the two initialization strategies (experiment E10)."""

import pytest

from repro.config import InitKind, SystemConfig
from repro.faults.harness import (
    crash,
    harness_config,
    hierarchy_violations,
    standard_workload,
    vandalize,
)
from repro.faults.salvager import (
    MAGIC_CLEAN,
    MAGIC_RUNNING,
    HierarchySalvager,
    read_marker,
)
from repro.init.bootstrap import BootstrapInitializer, standard_steps
from repro.init.image import ImageBuilder, boot_from_image
from repro.kernel.services import KernelServices
from repro.system import MulticsSystem


class TestBootstrap:
    def test_all_steps_run_privileged(self, config):
        services = KernelServices(config)
        init = BootstrapInitializer()
        init.boot(services)
        assert init.privileged_steps_run == len(standard_steps())
        assert init.privileged_steps_run >= 8

    def test_builds_standard_hierarchy(self, config):
        services = KernelServices(config)
        BootstrapInitializer().boot(services)
        names = {b.name for b in services.tree.root.list_branches()}
        assert {"udd", "sss", "daemons", "system_library"} <= names

    def test_registers_daemons(self, config):
        services = KernelServices(config)
        BootstrapInitializer().boot(services)
        assert "Initializer" in services.users
        assert "Backup" in services.users

    def test_idempotent_reboot(self, config):
        services = KernelServices(config)
        BootstrapInitializer().boot(services)
        BootstrapInitializer().boot(services)  # directories persist
        names = [b.name for b in services.tree.root.list_branches()]
        assert names.count("udd") == 1


class TestImage:
    def test_image_captures_bootstrap_state(self, config):
        image = ImageBuilder().build(config)
        paths = {tuple(d.path) for d in image.directories}
        assert () in paths
        assert ("udd",) in paths
        assert any(u["person"] == "Initializer" for u in image.users)
        assert image.seal

    def test_boot_from_image_is_two_privileged_steps(self, config):
        image = ImageBuilder().build(config)
        services = KernelServices(config)
        assert boot_from_image(services, image) == 2

    def test_image_boot_equivalent_to_bootstrap(self, config):
        """Both strategies manifest the same system state."""
        a = KernelServices(config)
        BootstrapInitializer().boot(a)

        b = KernelServices(config)
        boot_from_image(b, ImageBuilder().build(config))

        def fingerprint(services):
            dirs = sorted(
                (d.name, len(d)) for d in services.tree.directories()
            )
            users = sorted(services.users)
            return dirs, users

        assert fingerprint(a) == fingerprint(b)

    def test_tampered_image_refused(self, config):
        """The seal is the one integrity check the loading kernel makes."""
        image = ImageBuilder().build(config)
        image.users.append(
            {
                "person": "Backdoor",
                "projects": ["SysDaemon"],
                "password_hash": "0" * 32,
                "clearance": "unclassified",
            }
        )
        services = KernelServices(config)
        with pytest.raises(RuntimeError, match="seal"):
            boot_from_image(services, image)
        assert "Backdoor" not in services.users

    def test_reseal_after_legitimate_change(self, config):
        image = ImageBuilder().build(config)
        image.users = [u for u in image.users if u["person"] != "IO"]
        image.sealed()
        services = KernelServices(config)
        boot_from_image(services, image)
        assert "IO" not in services.users


class TestSystemIntegration:
    def test_facade_uses_configured_strategy(self):
        from repro import MulticsSystem, kernel_config

        boot_sys = MulticsSystem(
            kernel_config(init=InitKind.BOOTSTRAP)
        ).boot()
        image_sys = MulticsSystem(kernel_config(init=InitKind.IMAGE)).boot()
        assert boot_sys.boot_privileged_steps >= 8
        assert image_sys.boot_privileged_steps == 2
        # Both produce a usable system.
        for system in (boot_sys, image_sys):
            system.register_user("Alice", "Crypto", "pw")
            session = system.login("Alice", "Crypto", "pw")
            assert session.home_path == ">udd>Crypto>Alice"


class TestSalvager:
    """Boot-time salvage driven by the salvager_data marker."""

    def _running_system(self):
        system = MulticsSystem(harness_config()).boot()
        system.register_user("Alice", "Crypto", "alice-pw")
        system.register_user("Eve", "Spies", "eve-pw")
        return system

    def test_boot_writes_running_marker(self):
        system = self._running_system()
        assert read_marker(system.services) == MAGIC_RUNNING

    def test_clean_shutdown_writes_clean_marker(self):
        system = self._running_system()
        system.shutdown()
        assert read_marker(system.services) == MAGIC_CLEAN

    def test_clean_shutdown_skips_salvage_on_reboot(self):
        system = self._running_system()
        standard_workload(system)
        system.shutdown()
        rebooted = MulticsSystem(services=system.services).boot()
        assert rebooted.salvage_report is None
        assert not any(
            r.subject == "kernel.salvager"
            for r in rebooted.services.audit.records
        )

    def test_unclean_marker_triggers_salvage(self):
        system = self._running_system()
        standard_workload(system)
        crash(system)  # no shutdown(): marker still says RUNNING
        rebooted = MulticsSystem(services=system.services).boot()
        report = rebooted.salvage_report
        assert report is not None
        assert report.directories_checked > 0
        assert any(
            r.subject == "kernel.salvager" and r.action == "salvage_begin"
            for r in rebooted.services.audit.records
        )

    def test_salvage_quarantines_dangling_branch(self):
        system = self._running_system()
        standard_workload(system)
        crash(system)
        damage = vandalize(system.services, seed=0, kinds=("dangling",))
        assert damage
        rebooted = MulticsSystem(services=system.services).boot()
        report = rebooted.salvage_report
        assert report.quarantined
        assert hierarchy_violations(rebooted.services) == []

    def test_salvage_reattaches_orphan_subtree(self):
        system = self._running_system()
        standard_workload(system)
        crash(system)
        damage = vandalize(system.services, seed=0, kinds=("orphan",))
        assert damage
        rebooted = MulticsSystem(services=system.services).boot()
        report = rebooted.salvage_report
        assert report.orphans_reattached
        assert hierarchy_violations(rebooted.services) == []
        # The lost subtree is findable under the quarantine directory.
        quarantine = rebooted.services.tree.root.maybe("salvager_quarantine")
        assert quarantine is not None

    def test_salvage_repairs_torn_directory_label(self):
        system = self._running_system()
        standard_workload(system)
        crash(system)
        damage = vandalize(system.services, seed=0, kinds=("label",))
        assert damage
        rebooted = MulticsSystem(services=system.services).boot()
        assert rebooted.salvage_report.labels_repaired >= 1
        assert hierarchy_violations(rebooted.services) == []

    def test_salvage_counts_as_privileged_boot_step(self):
        system = self._running_system()
        crash(system)
        baseline = MulticsSystem(harness_config()).boot().boot_privileged_steps
        rebooted = MulticsSystem(services=system.services).boot()
        assert rebooted.boot_privileged_steps == baseline + 1

    def test_require_clean_raises_on_dirty_tree(self):
        from repro.errors import SalvageNeeded

        system = self._running_system()
        crash(system)
        with pytest.raises(SalvageNeeded):
            HierarchySalvager(system.services).require_clean()
