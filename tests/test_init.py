"""Tests for the two initialization strategies (experiment E10)."""

import pytest

from repro.config import InitKind, SystemConfig
from repro.init.bootstrap import BootstrapInitializer, standard_steps
from repro.init.image import ImageBuilder, boot_from_image
from repro.kernel.services import KernelServices


class TestBootstrap:
    def test_all_steps_run_privileged(self, config):
        services = KernelServices(config)
        init = BootstrapInitializer()
        init.boot(services)
        assert init.privileged_steps_run == len(standard_steps())
        assert init.privileged_steps_run >= 8

    def test_builds_standard_hierarchy(self, config):
        services = KernelServices(config)
        BootstrapInitializer().boot(services)
        names = {b.name for b in services.tree.root.list_branches()}
        assert {"udd", "sss", "daemons", "system_library"} <= names

    def test_registers_daemons(self, config):
        services = KernelServices(config)
        BootstrapInitializer().boot(services)
        assert "Initializer" in services.users
        assert "Backup" in services.users

    def test_idempotent_reboot(self, config):
        services = KernelServices(config)
        BootstrapInitializer().boot(services)
        BootstrapInitializer().boot(services)  # directories persist
        names = [b.name for b in services.tree.root.list_branches()]
        assert names.count("udd") == 1


class TestImage:
    def test_image_captures_bootstrap_state(self, config):
        image = ImageBuilder().build(config)
        paths = {tuple(d.path) for d in image.directories}
        assert () in paths
        assert ("udd",) in paths
        assert any(u["person"] == "Initializer" for u in image.users)
        assert image.seal

    def test_boot_from_image_is_two_privileged_steps(self, config):
        image = ImageBuilder().build(config)
        services = KernelServices(config)
        assert boot_from_image(services, image) == 2

    def test_image_boot_equivalent_to_bootstrap(self, config):
        """Both strategies manifest the same system state."""
        a = KernelServices(config)
        BootstrapInitializer().boot(a)

        b = KernelServices(config)
        boot_from_image(b, ImageBuilder().build(config))

        def fingerprint(services):
            dirs = sorted(
                (d.name, len(d)) for d in services.tree.directories()
            )
            users = sorted(services.users)
            return dirs, users

        assert fingerprint(a) == fingerprint(b)

    def test_tampered_image_refused(self, config):
        """The seal is the one integrity check the loading kernel makes."""
        image = ImageBuilder().build(config)
        image.users.append(
            {
                "person": "Backdoor",
                "projects": ["SysDaemon"],
                "password_hash": "0" * 32,
                "clearance": "unclassified",
            }
        )
        services = KernelServices(config)
        with pytest.raises(RuntimeError, match="seal"):
            boot_from_image(services, image)
        assert "Backdoor" not in services.users

    def test_reseal_after_legitimate_change(self, config):
        image = ImageBuilder().build(config)
        image.users = [u for u in image.users if u["person"] != "IO"]
        image.sealed()
        services = KernelServices(config)
        boot_from_image(services, image)
        assert "IO" not in services.users


class TestSystemIntegration:
    def test_facade_uses_configured_strategy(self):
        from repro import MulticsSystem, kernel_config

        boot_sys = MulticsSystem(
            kernel_config(init=InitKind.BOOTSTRAP)
        ).boot()
        image_sys = MulticsSystem(kernel_config(init=InitKind.IMAGE)).boot()
        assert boot_sys.boot_privileged_steps >= 8
        assert image_sys.boot_privileged_steps == 2
        # Both produce a usable system.
        for system in (boot_sys, image_sys):
            system.register_user("Alice", "Crypto", "pw")
            session = system.login("Alice", "Crypto", "pw")
            assert session.home_path == ">udd>Crypto>Alice"
