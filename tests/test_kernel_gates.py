"""Tests for the gate registry, validators, and the perimeter censuses."""

import pytest

from repro.config import SystemConfig
from repro.errors import AccessViolation, InvalidArgument
from repro.kernel import metrics
from repro.kernel.gates import Gate, GateTable, GateViolationError, VALIDATORS
from repro.kernel.kernel import build_kernel
from repro.kernel.legacy import build_legacy
from repro.kernel.services import KernelServices
from repro.proc.process import Process
from repro.security.principal import Principal


@pytest.fixture
def kernel(config):
    return build_kernel(config)


@pytest.fixture
def legacy(config):
    return build_legacy(config)


def user_process(name="u", ring=4):
    return Process(name, ring=ring, principal=Principal("Test", "Proj"))


class TestValidators:
    @pytest.mark.parametrize(
        "spec,good,bad",
        [
            ("int", 5, "five"),
            ("int", -5, 1.5),
            ("uint", 0, -1),
            ("segno", 8, True),
            ("str", "x", 9),
            ("name", "notes", "with>sep"),
            ("path", ">a>b", "relative"),
            ("mode", "rw", "rx"),
            ("pattern", "Alice.Crypto", "a.b.c.d"),
            ("words", [1, 2], [1, "a"]),
        ],
    )
    def test_specs(self, spec, good, bad):
        VALIDATORS[spec](good)
        with pytest.raises(InvalidArgument):
            VALIDATORS[spec](bad)

    def test_label_spec(self):
        from repro.security.mac import SecurityLabel

        VALIDATORS["label"](SecurityLabel(1))
        with pytest.raises(InvalidArgument):
            VALIDATORS["label"]("secret")

    def test_any_accepts_everything(self):
        VALIDATORS["any"](object())


class TestGateTable:
    def make_table(self, config):
        services = KernelServices(config)
        return services, GateTable(services, services.audit)

    def test_register_and_call(self, config):
        services, table = self.make_table(config)
        table.register(
            Gate("t_$add", "test", lambda s, p, a, b: a + b, ("int", "int"))
        )
        assert table.call(user_process(), "t_$add", 2, 3) == 5
        assert table.calls == 1

    def test_duplicate_name_rejected(self, config):
        services, table = self.make_table(config)
        gate = Gate("t_$x", "test", lambda s, p: None)
        table.register(gate)
        with pytest.raises(ValueError):
            table.register(gate)
        # Still exactly one registration; the table is unchanged.
        assert table.names().count("t_$x") == 1

    def test_unknown_gate(self, config):
        services, table = self.make_table(config)
        with pytest.raises(GateViolationError):
            table.call(user_process(), "no_such_gate")

    def test_unregistered_gate_lookup(self, config):
        services, table = self.make_table(config)
        with pytest.raises(GateViolationError):
            table.gate("hcs_$never_registered")
        assert "hcs_$never_registered" not in table

    def test_claim_metrics_rebinds_to_the_claiming_table(self, config):
        services, first = self.make_table(config)
        first.register(Gate("t_$x", "test", lambda s, p: None, ()))
        first.call(user_process(), "t_$x")
        second = GateTable(services, services.audit)  # claims on init
        assert services.metrics.snapshot()["counters"]["gate.calls"] == 0
        first.claim_metrics()
        assert services.metrics.snapshot()["counters"]["gate.calls"] == 1
        assert second.calls == 0

    def test_argument_count_enforced(self, config):
        services, table = self.make_table(config)
        table.register(Gate("t_$one", "test", lambda s, p, a: a, ("int",)))
        with pytest.raises(InvalidArgument):
            table.call(user_process(), "t_$one")
        with pytest.raises(InvalidArgument):
            table.call(user_process(), "t_$one", 1, 2)

    def test_argument_validated_before_handler(self, config):
        services, table = self.make_table(config)
        ran = []
        table.register(
            Gate("t_$w", "test", lambda s, p, a: ran.append(a), ("uint",))
        )
        with pytest.raises(InvalidArgument):
            table.call(user_process(), "t_$w", -3)
        assert ran == []  # handler never saw the bad argument
        assert table.rejections == 1

    def test_privileged_gate_ring_checked(self, config):
        from repro.kernel.gates import PRIVILEGED_GATE

        services, table = self.make_table(config)
        table.register(
            Gate("t_$admin", "test", lambda s, p: "ok", (),
                 brackets=PRIVILEGED_GATE)
        )
        with pytest.raises(AccessViolation):
            table.call(user_process(ring=4), "t_$admin")
        assert table.call(user_process(ring=1), "t_$admin") == "ok"

    def test_handler_crash_is_supervisor_incident(self, config):
        services, table = self.make_table(config)

        def bad_handler(s, p):
            raise IndexError("walked off the input")

        table.register(Gate("t_$crash", "test", bad_handler, ()))
        with pytest.raises(IndexError):
            table.call(user_process(), "t_$crash")
        assert services.supervisor_incidents == 1

    def test_cross_ring_cost_charged(self, config):
        from repro.config import RingMode

        config.ring_mode = RingMode.SOFTWARE_645
        services, table = self.make_table(config)
        table.register(Gate("t_$x", "test", lambda s, p: None, ()))
        process = user_process()
        table.call(process, "t_$x")
        assert process.cpu_cycles >= config.costs.cross_ring_penalty_645

    def test_calls_audited(self, config):
        services, table = self.make_table(config)
        table.register(Gate("t_$x", "test", lambda s, p: None, ()))
        table.call(user_process(), "t_$x")
        assert services.audit.records[-1].outcome == "granted"

    def test_ring_restored_after_call(self, config):
        services, table = self.make_table(config)
        table.register(Gate("t_$x", "test", lambda s, p: p.ring, ()))
        process = user_process(ring=4)
        # The handler runs in ring 0; the caller returns to ring 4.
        assert table.call(process, "t_$x") == 0
        assert process.ring == 4


class TestDenyStubGates:
    """Edge cases of the specialized table's deny stubs: the stub
    keeps the original gate's brackets and signature, so everything
    the choke point enforces fires before (or instead of) the stub."""

    def make_table(self, config, profile_gates=()):
        from repro.kernel.specialize import GateProfile, SpecializedGateTable

        services = KernelServices(config)
        table = SpecializedGateTable(
            services, services.audit, GateProfile("edge", profile_gates)
        )
        return services, table

    def test_duplicate_stub_registration_rejected(self, config):
        services, table = self.make_table(config)
        gate = Gate("t_$x", "test", lambda s, p: None)
        table.register_stub(gate)
        with pytest.raises(ValueError):
            table.register_stub(gate)
        with pytest.raises(ValueError):
            table.register(gate)

    def test_stub_keeps_privileged_brackets(self, config):
        from repro.errors import SpecializationDenial
        from repro.kernel.gates import PRIVILEGED_GATE

        services, table = self.make_table(config)
        table.register_stub(
            Gate("t_$admin", "test", lambda s, p: "ok", (),
                 brackets=PRIVILEGED_GATE)
        )
        # From the user ring the bracket check fires first: an
        # AccessViolation, not a SpecializationDenial, and no stub hit.
        with pytest.raises(AccessViolation) as excinfo:
            table.call(user_process(ring=4), "t_$admin")
        assert not isinstance(excinfo.value, SpecializationDenial)
        assert table.deny_stub_hits == 0
        # From a trusted ring the bracket admits the call — into the
        # stub, which refuses.
        with pytest.raises(SpecializationDenial):
            table.call(user_process(ring=1), "t_$admin")
        assert table.deny_stub_hits == 1

    def test_stub_validates_arguments_before_denying(self, config):
        from repro.errors import InvalidArgument, SpecializationDenial

        services, table = self.make_table(config)
        table.register_stub(
            Gate("t_$one", "test", lambda s, p, a: a, ("uint",))
        )
        with pytest.raises(InvalidArgument):
            table.call(user_process(), "t_$one", -3)
        assert table.deny_stub_hits == 0  # validation fired first
        with pytest.raises(SpecializationDenial):
            table.call(user_process(), "t_$one", 3)
        assert table.deny_stub_hits == 1


class TestPerimeterCensus:
    """Experiments E1 and E2: the before/after gate counts."""

    def test_legacy_larger_than_kernel(self, kernel, legacy):
        assert legacy.gate_count() > kernel.gate_count()
        assert legacy.user_available_count() > kernel.user_available_count()

    def test_e1_linker_is_about_ten_percent(self, legacy):
        comparison = metrics.linker_removal(legacy)
        assert comparison.removed == 10
        assert 0.08 <= comparison.fraction_removed <= 0.14

    def test_e2_linker_plus_naming_about_one_third(self, legacy):
        comparison = metrics.linker_and_naming_removal(legacy)
        assert 0.30 <= comparison.fraction_removed <= 0.42

    def test_kernel_has_no_removable_gates(self, kernel):
        census = metrics.gate_census(kernel)
        assert set(census.by_removal) == {"kept"}

    def test_legacy_removal_tags(self, legacy):
        census = metrics.gate_census(legacy)
        assert census.by_removal["linker"] == 10
        assert census.by_removal["naming"] == 23
        assert census.by_removal["device_io"] == 11

    def test_kernel_keeps_exactly_the_kept_gates(self, kernel, legacy):
        legacy_kept = {
            g.name for g in legacy.gates.user_available_gates()
            if g.removed_by is None
        }
        kernel_names = {g.name for g in kernel.gates.user_available_gates()}
        assert kernel_names == legacy_kept


class TestCodeSizeMetrics:
    """Experiment E3 and the protected-code reports."""

    def test_count_statements_excludes_docstrings(self):
        source = '''
def f(x):
    """Docstring."""
    y = x + 1
    return y
'''
        assert metrics.count_statements(source) == 3  # def, assign, return

    def test_e3_address_space_code_shrinks(self, kernel, legacy):
        ratio = metrics.address_space_reduction(legacy, kernel)
        assert ratio > 3.0  # paper claims 10x; see EXPERIMENTS.md

    def test_protected_code_report(self, kernel, legacy):
        kernel_size = metrics.protected_code_report(kernel).total
        legacy_size = metrics.protected_code_report(legacy).total
        assert legacy_size > kernel_size
        assert kernel_size > 0

    def test_legacy_protected_modules_superset(self, kernel, legacy):
        kernel_mods = {m.__name__ for m in kernel.protected_modules()}
        legacy_mods = {m.__name__ for m in legacy.protected_modules()}
        assert kernel_mods < legacy_mods
