"""Fast-path equivalence: ``SystemConfig.fast_path`` selects between
the refactored hot cores (delay-0 event bucket in the simulator,
inlined/decoded CPU interpreter) and the pre-refactor implementations.
Everything architectural must be byte-identical either way — results,
cycle charges, AM counters, grant/deny traces, snapshots, the final
simulated clock.  Only wall-clock speed may differ (bench E18 measures
that half and asserts the >=2x)."""

import pytest

from repro import MulticsSystem, kernel_config
from repro.errors import BoundsViolation, IllegalInstruction
from repro.hw.clock import Simulator
from repro.hw.cpu import Instruction as I, Op
from repro.user.object_format import ObjectSegment

from tests.test_smp import make_jobs, smp_system


# ---------------------------------------------------------------------------
# the discrete-event core
# ---------------------------------------------------------------------------

class TestSimulatorBucket:
    def run_interleaving(self, fast: bool) -> tuple[list, int, int]:
        """A mix of delay-0, delayed, and absolute-time events, with
        events scheduling further delay-0 events while running."""
        sim = Simulator(fast_path=fast)
        order: list[str] = []

        def ev(tag):
            return lambda: order.append(tag)

        def chain(tag, n):
            def fire():
                order.append(tag)
                if n:
                    sim.schedule(0, chain(f"{tag}+", n - 1))
            return fire

        sim.schedule(5, ev("d5"))
        sim.schedule(0, ev("z1"))
        sim.schedule_at(0, ev("at0"))   # heap event at the same time
        sim.schedule(0, chain("z2", 2))
        sim.schedule(5, ev("d5b"))
        sim.schedule(2, ev("d2"))
        sim.run()
        sim.schedule(0, ev("tail"))
        pending_mid = sim.pending
        sim.run()
        return order, pending_mid, sim.clock.now

    def test_event_order_identical_fast_and_classic(self):
        assert self.run_interleaving(True) == self.run_interleaving(False)

    def test_classic_order_is_time_then_seq(self):
        order, pending_mid, now = self.run_interleaving(False)
        assert order == ["z1", "at0", "z2", "z2+", "z2++", "d2",
                         "d5", "d5b", "tail"]
        assert pending_mid == 1
        assert now == 5

    def test_pending_and_clear_cover_the_bucket(self):
        sim = Simulator(fast_path=True)
        sim.schedule(0, lambda: None)
        sim.schedule(3, lambda: None)
        assert sim.pending == 2
        assert sim.clear_pending() == 2
        assert sim.pending == 0
        assert sim.run() is None  # nothing left; no error

    def test_step_picks_earliest_across_bucket_and_heap(self):
        sim = Simulator(fast_path=True)
        seen = []
        sim.schedule(0, lambda: seen.append("bucket"))
        sim.schedule_at(0, lambda: seen.append("heap"))
        assert sim.step() and sim.step()
        assert seen == ["bucket", "heap"]  # seq order within time 0

    def test_run_until_stops_before_late_bucketless_event(self):
        sim = Simulator(fast_path=True)
        seen = []
        sim.schedule(0, lambda: seen.append("now"))
        sim.schedule(10, lambda: seen.append("later"))
        sim.run(until=4)
        assert seen == ["now"]
        assert sim.clock.now == 4
        sim.run()
        assert seen == ["now", "later"]

    def test_events_run_counted_in_fast_loop(self):
        sim = Simulator(fast_path=True)
        for _ in range(5):
            sim.schedule(0, lambda: None)
        sim.run()
        assert sim.events_run == 5

    def test_event_budget_still_enforced(self):
        sim = Simulator(fast_path=True)

        def again():
            sim.schedule(0, again)

        sim.schedule(0, again)
        with pytest.raises(RuntimeError, match="event budget"):
            sim.run(max_events=50)


# ---------------------------------------------------------------------------
# the CPU interpreter
# ---------------------------------------------------------------------------

SPIN_AND_TOUCH = ObjectSegment(
    "spin",
    code=[
        # for i in 0..N: acc += M[data][i % 24]; plus some pure compute
        I(Op.PUSHI, 0), I(Op.STOREF, 0),            # acc
        I(Op.PUSHI, 0), I(Op.STOREF, 1),            # i
        I(Op.LOADF, 1), I(Op.LOADF, 2), I(Op.LT), I(Op.JZ, 22),
        I(Op.LOADF, 0),
        I(Op.LOADF, 1), I(Op.PUSHI, 24), I(Op.MOD),
        I(Op.LOADI, 0),                              # segno patched
        I(Op.ADD),
        I(Op.PUSHI, 3), I(Op.MUL), I(Op.PUSHI, 2), I(Op.DIV),
        I(Op.STOREF, 0),
        I(Op.LOADF, 1), I(Op.PUSHI, 1), I(Op.ADD), I(Op.STOREF, 1),
        I(Op.JMP, 4),
        I(Op.LOADF, 0), I(Op.RET),
    ],
    definitions={"main": 0},
)


def patched(obj: ObjectSegment, data_segno: int) -> ObjectSegment:
    return ObjectSegment(
        obj.name,
        code=[
            I(Op.LOADI, data_segno) if inst.op is Op.LOADI else inst
            for inst in obj.code
        ],
        definitions=dict(obj.definitions),
    )


def cpu_run(fast: bool, program=None, sizing: dict | None = None,
            iters: int = 200):
    """One login session running a memory-touching loop; returns the
    architectural fingerprint of the run."""
    overrides = dict(core_frames=256, bulk_frames=512, disk_frames=2048)
    overrides.update(sizing or {})
    system = MulticsSystem(
        kernel_config(fast_path=fast, **overrides)
    ).boot()
    system.register_user("Alice", "Crypto", "pw")
    session = system.login("Alice", "Crypto", "pw")
    data = session.create_segment("data", n_pages=2)
    session.write_words(data, [7] * 32)
    segno = session.install_object("prog", patched(program or SPIN_AND_TOUCH,
                                                   data))
    session.load_program(segno)
    cpu = session.make_cpu()
    assert cpu.fast_path is fast
    result = None
    error = ""
    try:
        result = cpu.execute(session.process, segno,
                             args=[0, 0, iters])
    except Exception as exc:  # noqa: BLE001 - fingerprinting faults too
        error = f"{type(exc).__name__}: {exc}"
    am = session.process.dseg.am
    return {
        "result": result,
        "error": error,
        "cycles": cpu.cycles,
        "instructions": cpu.instructions_executed,
        "am_hit_cycles": cpu.am_hit_cycles,
        "walk_cycles": cpu.walk_cycles,
        "am": (am.hits, am.misses, am.invalidations, am.cams,
               am.capacity_evictions),
        "clock": system.clock.now,
        "trace": [(r.action, r.object, r.outcome)
                  for r in system.audit.records],
    }


class TestCpuEquivalence:
    def test_compute_and_memory_loop_identical(self):
        assert cpu_run(True) == cpu_run(False)

    def test_paging_pressure_identical(self):
        """Tiny core: evictions break AM witnesses mid-run, forcing the
        inline hit path to fall back exactly where the classic walk
        would."""
        sizing = dict(core_frames=4, bulk_frames=32, disk_frames=256,
                      page_size=16)
        fast = cpu_run(True, sizing=sizing, iters=120)
        classic = cpu_run(False, sizing=sizing, iters=120)
        assert fast == classic
        assert fast["am"][2] > 0  # invalidations actually happened

    def test_am_off_identical(self):
        sizing = dict(am_enabled=False)
        assert cpu_run(True, sizing=sizing) == cpu_run(False, sizing=sizing)

    @pytest.mark.parametrize("bad_program,exc", [
        # stack underflow in a binop
        (ObjectSegment("bad", code=[I(Op.ADD), I(Op.RET)],
                       definitions={"main": 0}), IllegalInstruction),
        # negative-offset reference
        (ObjectSegment("bad", code=[I(Op.PUSHI, -3), I(Op.LOADI, 0),
                                    I(Op.RET)],
                       definitions={"main": 0}), BoundsViolation),
        # out-of-bound reference
        (ObjectSegment("bad", code=[I(Op.PUSHI, 4096), I(Op.LOADI, 0),
                                    I(Op.RET)],
                       definitions={"main": 0}), BoundsViolation),
        # jump off the end of the segment
        (ObjectSegment("bad", code=[I(Op.JMP, 99)],
                       definitions={"main": 0}), IllegalInstruction),
    ])
    def test_faults_identical(self, bad_program, exc):
        fast = cpu_run(True, program=bad_program)
        classic = cpu_run(False, program=bad_program)
        assert fast == classic
        assert exc.__name__ in fast["error"]


# ---------------------------------------------------------------------------
# the whole complex: snapshots, audit, clock
# ---------------------------------------------------------------------------

def complex_run(fast: bool, n_cpus: int):
    system = smp_system(fast_path=fast, n_cpus=n_cpus)
    jobs, _ = make_jobs(system)
    cx = system.cpu_complex()
    cx.run_jobs(jobs)
    assert [j.result for j in jobs] == [96] * 8
    return (
        system.metrics.to_json(),
        system.audit_trail.to_json(),
        system.clock.now,
    )


@pytest.mark.parametrize("n_cpus", [1, 2])
def test_complex_byte_identical_fast_vs_classic(n_cpus):
    fast = complex_run(True, n_cpus)
    classic = complex_run(False, n_cpus)
    assert fast[0] == classic[0]   # metrics snapshot, byte for byte
    assert fast[1] == classic[1]   # audit trail (grant/deny trace)
    assert fast[2] == classic[2]   # final simulated clock
