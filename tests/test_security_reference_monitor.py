"""Tests for the reference monitor (ACL ∧ MAC, audited)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import AccessDenied
from repro.fs.acl import Acl
from repro.fs.directory import Branch
from repro.hw.segmentation import AccessMode
from repro.security.mac import LEVEL_NAMES, SecurityLabel
from repro.security.principal import Principal
from repro.security.reference_monitor import ReferenceMonitor


def branch(acl=None, label=SecurityLabel(0)):
    return Branch(
        name="data",
        uid=1,
        is_directory=False,
        acl=acl or Acl.make(("*.*.*", "rw")),
        label=label,
    )


def subject(level=0, cats=(), person="Alice", project="Crypto"):
    return Principal(
        person, project, clearance=SecurityLabel(level, frozenset(cats))
    )


class TestDiscretionary:
    def test_granted_within_acl(self):
        rm = ReferenceMonitor()
        rm.check(subject(), branch(), AccessMode.RW)
        assert rm.denials == 0

    def test_denied_beyond_acl(self):
        rm = ReferenceMonitor()
        b = branch(acl=Acl.make(("*.*.*", "r")))
        with pytest.raises(AccessDenied, match="acl grants only"):
            rm.check(subject(), b, AccessMode.W)

    def test_unlisted_principal_denied(self):
        rm = ReferenceMonitor()
        b = branch(acl=Acl.make(("Bob.Dev", "rw")))
        with pytest.raises(AccessDenied):
            rm.check(subject(), b, AccessMode.R)


class TestMandatory:
    def test_read_up_denied(self):
        rm = ReferenceMonitor()
        b = branch(label=SecurityLabel(2))
        with pytest.raises(AccessDenied, match="simple security"):
            rm.check(subject(level=0), b, AccessMode.R)

    def test_write_down_denied(self):
        rm = ReferenceMonitor()
        b = branch(label=SecurityLabel(0))
        with pytest.raises(AccessDenied, match=r"\*-property"):
            rm.check(subject(level=2), b, AccessMode.W)

    def test_read_down_write_up_allowed(self):
        rm = ReferenceMonitor()
        low = branch(label=SecurityLabel(0))
        high = branch(label=SecurityLabel(3))
        rm.check(subject(level=2), low, AccessMode.R)
        rm.check(subject(level=2), high, AccessMode.W)

    def test_category_isolation(self):
        rm = ReferenceMonitor()
        b = branch(label=SecurityLabel(1, frozenset({"crypto"})))
        with pytest.raises(AccessDenied):
            rm.check(subject(level=3, cats=("nato",)), b, AccessMode.R)

    def test_acl_cannot_override_mac(self):
        """Even an explicit rw ACL entry cannot defeat the lattice."""
        rm = ReferenceMonitor()
        b = branch(
            acl=Acl.make(("Alice.Crypto", "rw")), label=SecurityLabel(3)
        )
        with pytest.raises(AccessDenied):
            rm.check(subject(level=0), b, AccessMode.R)


class TestSdwMode:
    def test_mode_is_acl_filtered_by_mac(self):
        rm = ReferenceMonitor()
        b = branch(
            acl=Acl.make(("*.*.*", "rw")), label=SecurityLabel(2)
        )
        # Same level: full rw.
        assert rm.sdw_mode(subject(level=2), b) == AccessMode.RW
        # Higher clearance: read-only (no write down).
        assert rm.sdw_mode(subject(level=3), b) == AccessMode.R
        # Lower clearance: write-only (no read up).
        assert rm.sdw_mode(subject(level=0), b) == AccessMode.W

    @given(
        st.integers(0, len(LEVEL_NAMES) - 1),
        st.integers(0, len(LEVEL_NAMES) - 1),
    )
    def test_sdw_mode_never_exceeds_mac(self, s_level, o_level):
        rm = ReferenceMonitor()
        b = branch(label=SecurityLabel(o_level))
        mode = rm.sdw_mode(subject(level=s_level), b)
        if mode & AccessMode.R:
            assert s_level >= o_level
        if mode & AccessMode.W:
            assert o_level >= s_level


class TestAudit:
    def test_decisions_logged(self):
        rm = ReferenceMonitor()
        rm.check(subject(), branch(), AccessMode.R, time=5)
        try:
            rm.check(subject(), branch(label=SecurityLabel(3)), AccessMode.R)
        except AccessDenied:
            pass
        assert len(rm.audit) == 2
        assert len(rm.audit.granted()) == 1
        assert len(rm.audit.denied()) == 1
        assert rm.audit.records[0].time == 5
        assert rm.audit.by_subject("Alice.Crypto.a")

    def test_may_predicate(self):
        rm = ReferenceMonitor()
        assert rm.may(subject(), branch(), AccessMode.R)
        assert not rm.may(subject(), branch(label=SecurityLabel(3)), AccessMode.R)

    def test_audit_tail_and_by_object(self):
        rm = ReferenceMonitor()
        for _ in range(15):
            rm.check(subject(), branch(), AccessMode.R)
        assert len(rm.audit.tail(10)) == 10
        assert len(rm.audit.by_object("data")) == 15
