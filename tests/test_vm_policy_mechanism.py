"""Tests for the ring-separated policy/mechanism page removal (E7)."""

import pytest

from repro.config import PageControlKind, SystemConfig
from repro.errors import InvalidArgument
from repro.hw.clock import Simulator
from repro.hw.memory import MemoryHierarchy
from repro.proc.scheduler import TrafficController
from repro.vm.page_control import make_page_control
from repro.vm.policy_mechanism import (
    ForgingRemovalPolicy,
    PageRemovalMechanism,
    PolicyGates,
    SensibleRemovalPolicy,
    SnoopingRemovalPolicy,
    ThrashingRemovalPolicy,
)
from repro.vm.segment_control import ActiveSegmentTable


@pytest.fixture
def setup(config: SystemConfig):
    sim = Simulator()
    tc = TrafficController(sim, config)
    hierarchy = MemoryHierarchy(config)
    ast = ActiveSegmentTable(hierarchy)
    pc = make_page_control(
        PageControlKind.SEQUENTIAL, sim, tc, hierarchy, ast, config
    )
    # Fill most of core with pages of one secret segment.
    seg = ast.activate(uid=99, n_pages=hierarchy.core.n_frames - 2)
    secret = 123456
    for page in range(seg.n_pages):
        pc.service_sync(seg, page)
        frame = seg.ptws[page].frame
        hierarchy.core.write(frame, 0, secret + page)
    mechanism = PageRemovalMechanism(pc)
    return pc, mechanism, seg, hierarchy


class TestGateSurface:
    def test_usage_info_exposes_only_scrubbed_fields(self, setup):
        pc, mechanism, seg, hierarchy = setup
        infos = mechanism.gates().usage_info()
        assert infos
        for info in infos:
            assert set(
                n for n in dir(info) if not n.startswith("_")
            ) == {"slot", "used", "modified", "age"}
            # Handles never equal the (uid, pageno) identity.
            assert info.slot not in {(99, p) for p in range(seg.n_pages)}

    def test_handles_change_each_round(self, setup):
        pc, mechanism, seg, hierarchy = setup
        gates = mechanism.gates()
        first = {i.slot for i in gates.usage_info()}
        second = {i.slot for i in gates.usage_info()}
        assert first != second

    def test_facade_is_sealed(self, setup):
        pc, mechanism, seg, hierarchy = setup
        gates = mechanism.gates()
        assert isinstance(gates, PolicyGates)
        with pytest.raises(AttributeError):
            gates.new_attr = 1
        with pytest.raises(AttributeError):
            gates._pc  # noqa: B018 - the probe is the test

    def test_move_requires_valid_handle(self, setup):
        pc, mechanism, seg, hierarchy = setup
        gates = mechanism.gates()
        gates.usage_info()
        with pytest.raises(InvalidArgument):
            gates.move_to_bulk(42)
        with pytest.raises(InvalidArgument):
            gates.move_to_bulk("sneaky")
        assert mechanism.invalid_calls == 2

    def test_stale_handle_is_harmless(self, setup):
        pc, mechanism, seg, hierarchy = setup
        gates = mechanism.gates()
        infos = gates.usage_info()
        slot = infos[0].slot
        assert gates.move_to_bulk(slot) is True
        # Re-snapshot, then replay an old handle: rejected as invalid.
        gates.usage_info()
        with pytest.raises(InvalidArgument):
            gates.move_to_bulk(slot)

    def test_move_actually_evicts(self, setup):
        pc, mechanism, seg, hierarchy = setup
        gates = mechanism.gates()
        before = hierarchy.core.free_count
        infos = gates.usage_info()
        gates.move_to_bulk(infos[0].slot)
        assert hierarchy.core.free_count == before + 1
        assert gates.free_count() == before + 1

    def test_mechanism_makes_bulk_room_itself(self, setup, config):
        """The policy never manages bulk placement: the mechanism picks
        the free block (so no page can overwrite another)."""
        pc, mechanism, seg, hierarchy = setup
        gates = mechanism.gates()
        # Exhaust the bulk store directly.
        while hierarchy.bulk.free_count:
            hierarchy.bulk.allocate()
        # Give the bulk census something evictable.
        infos = gates.usage_info()
        with pytest.raises(Exception):
            # With a fully hand-allocated bulk store there is no page
            # the mechanism may move; the mechanism fails safe.
            gates.move_to_bulk(infos[0].slot)


class TestPolicies:
    def test_sensible_policy_frees_to_target(self, setup):
        pc, mechanism, seg, hierarchy = setup
        moves = SensibleRemovalPolicy().make_room(mechanism.gates(), target=4)
        assert hierarchy.core.free_count >= 4
        assert moves >= 2

    def test_thrasher_causes_denial_not_disclosure(self, setup):
        pc, mechanism, seg, hierarchy = setup
        thrasher = ThrashingRemovalPolicy()
        thrasher.make_room(mechanism.gates(), target=hierarchy.core.n_frames)
        # Denial: everything got evicted.
        assert not seg.resident_pages()
        # No disclosure/modification: page data intact after refault.
        pc.service_sync(seg, 0)
        frame = seg.ptws[0].frame
        assert hierarchy.core.read(frame, 0) == 123456

    def test_forger_every_probe_rejected(self, setup):
        pc, mechanism, seg, hierarchy = setup
        forger = ForgingRemovalPolicy()
        forger.make_room(mechanism.gates(), target=2)
        assert forger.rejections == 64
        assert mechanism.invalid_calls >= 64

    def test_snooper_finds_nothing(self, setup):
        pc, mechanism, seg, hierarchy = setup
        snooper = SnoopingRemovalPolicy()
        snooper.make_room(mechanism.gates(), target=3)
        assert snooper.loot == []

    def test_wedged_policy_cannot_hang_mechanism(self, setup):
        """A policy that refuses to free anything terminates anyway via
        the guard counter (denial bounded)."""
        pc, mechanism, seg, hierarchy = setup

        class StubbornPolicy(SensibleRemovalPolicy):
            def choose(self, infos):
                raise_target = infos[0].slot
                return raise_target  # fine, but see make_room override

        # The base make_room guard bounds iterations even if free_count
        # never reaches target (e.g. target absurdly high).
        moves = SensibleRemovalPolicy().make_room(
            mechanism.gates(), target=10**9
        )
        assert moves <= len(seg.homes)

    def test_audit_trail_records_gate_calls(self, setup):
        pc, mechanism, seg, hierarchy = setup
        SensibleRemovalPolicy().make_room(mechanism.gates(), target=3)
        gates_used = {entry[0] for entry in mechanism.audit}
        assert gates_used <= set(PageRemovalMechanism.GATE_NAMES)
        assert "move_to_bulk" in gates_used
