"""Tests for the traffic controller and the two-layer process design."""

import pytest

from repro.config import SystemConfig
from repro.errors import AccessViolation
from repro.hw.clock import Simulator
from repro.proc.ipc import Block, Charge, Now, Wakeup
from repro.proc.process import Process, ProcessState
from repro.proc.scheduler import TrafficController
from repro.proc.virtual_processor import VirtualProcessorTable


@pytest.fixture
def tc(config: SystemConfig):
    return TrafficController(Simulator(), config)


def run(tc):
    tc.run(max_events=100_000)


class TestBasicExecution:
    def test_process_runs_to_completion(self, tc):
        def body(proc):
            yield Charge(10)
            return 42

        p = Process("worker", body=body)
        tc.add_process(p)
        run(tc)
        assert p.state is ProcessState.STOPPED
        assert p.result == 42
        assert p.cpu_cycles == 10
        assert tc.sim.clock.now == 10

    def test_two_processes_share_one_processor(self, tc):
        def body(proc):
            yield Charge(100)

        a, b = Process("a", body=body), Process("b", body=body)
        tc.add_process(a)
        tc.add_process(b)
        run(tc)
        assert a.state is ProcessState.STOPPED
        assert b.state is ProcessState.STOPPED
        # One processor: total elapsed is the sum.
        assert tc.sim.clock.now == 200

    def test_two_processors_run_in_parallel(self, config):
        config.n_processors = 2
        tc = TrafficController(Simulator(), config)

        def body(proc):
            yield Charge(100)

        a, b = Process("a", body=body), Process("b", body=body)
        tc.add_process(a)
        tc.add_process(b)
        run(tc)
        assert tc.sim.clock.now == 100

    def test_now_simcall(self, tc):
        seen = []

        def body(proc):
            seen.append((yield Now()))
            yield Charge(7)
            seen.append((yield Now()))

        tc.add_process(Process("t", body=body))
        run(tc)
        assert seen == [0, 7]

    def test_crashing_process_marked_failed(self, tc):
        def body(proc):
            yield Charge(1)
            raise RuntimeError("boom")

        p = Process("crash", body=body)
        tc.add_process(p)
        run(tc)
        assert p.state is ProcessState.FAILED
        assert isinstance(p.failure, RuntimeError)

    def test_unknown_simcall_fails_process(self, tc):
        def body(proc):
            yield "nonsense"

        p = Process("bad", body=body)
        tc.add_process(p)
        run(tc)
        assert p.state is ProcessState.FAILED
        assert isinstance(p.failure, TypeError)

    def test_cannot_admit_twice(self, tc):
        p = Process("p", body=lambda proc: iter(()))

        def body(proc):
            yield Charge(1)

        p = Process("p", body=body)
        tc.add_process(p)
        with pytest.raises(ValueError):
            tc.add_process(p)


class TestBlockWakeup:
    def test_block_until_wakeup(self, tc):
        ch = tc.create_channel("ch")
        log = []

        def waiter(proc):
            msg = yield Block(ch)
            log.append(("woke", msg, (yield Now())))

        def waker(proc):
            yield Charge(50)
            yield Wakeup(ch, "hello")

        tc.add_process(Process("waiter", body=waiter))
        tc.add_process(Process("waker", body=waker))
        run(tc)
        assert log == [("woke", "hello", 50)]

    def test_wakeup_waiting_switch(self, tc):
        """A wakeup sent before the block is remembered, not lost."""
        ch = tc.create_channel("ch")
        log = []

        def waker(proc):
            yield Wakeup(ch, "early")

        def waiter(proc):
            yield Charge(100)  # block long after the wakeup
            msg = yield Block(ch)
            log.append(msg)

        tc.add_process(Process("waker", body=waker))
        tc.add_process(Process("waiter", body=waiter))
        run(tc)
        assert log == ["early"]

    def test_fifo_delivery_to_multiple_waiters(self, tc):
        ch = tc.create_channel("ch")
        order = []

        def waiter(tag):
            def body(proc):
                yield Block(ch)
                order.append(tag)

            return body

        for tag in ("first", "second"):
            tc.add_process(Process(tag, body=waiter(tag)))
        run(tc)

        def waker(proc):
            yield Wakeup(ch)
            yield Wakeup(ch)

        tc.add_process(Process("waker", body=waker))
        run(tc)
        assert order == ["first", "second"]

    def test_guarded_channel_raises_in_sender(self, tc):
        def deny(sender):
            raise AccessViolation("not yours")

        ch = tc.create_channel("guarded", guard=deny)
        outcome = []

        def sender(proc):
            try:
                yield Wakeup(ch)
            except AccessViolation:
                outcome.append("denied")

        tc.add_process(Process("sender", body=sender))
        run(tc)
        assert outcome == ["denied"]

    def test_kernel_wakeup_bypasses_guard(self, tc):
        def deny(sender):
            raise AccessViolation("no")

        ch = tc.create_channel("guarded", guard=deny)
        got = []

        def waiter(proc):
            got.append((yield Block(ch)))

        tc.add_process(Process("w", body=waiter))
        run(tc)
        tc.send_wakeup(ch, "from-device", sender=None)
        run(tc)
        assert got == ["from-device"]


class TestSchedulingPolicy:
    def test_quantum_preemption_round_robins(self, config):
        config.quantum = 10
        tc = TrafficController(Simulator(), config)
        finish = {}

        def body(name):
            def gen(proc):
                for _ in range(5):
                    yield Charge(10)
                finish[name] = tc.sim.clock.now

            return gen

        a = Process("a", body=body("a"))
        b = Process("b", body=body("b"))
        tc.add_process(a)
        tc.add_process(b)
        run(tc)
        # With preemption both finish near the end; without it, "a"
        # would finish at 50 while "b" waited.
        assert finish["a"] > 50
        assert a.preemptions > 0

    def test_dedicated_process_scheduled_first(self, config):
        tc = TrafficController(Simulator(), config)
        order = []

        def body(name):
            def gen(proc):
                order.append(name)
                yield Charge(1)

            return gen

        def busy_body(proc):
            yield Charge(100)

        # Occupy the single processor, then admit user before kernel.
        busy = Process("busy", body=busy_body)
        user = Process("user", body=body("user"))
        kernel = Process("kernel", body=body("kernel"), dedicated=True)
        tc.add_process(busy)
        tc.add_process(user)
        tc.add_process(kernel)
        run(tc)
        # When the processor frees, the kernel queue has priority even
        # though the user was admitted first.
        assert order == ["kernel", "user"]

    def test_dedicated_process_never_preempted(self, config):
        config.quantum = 5
        tc = TrafficController(Simulator(), config)

        def kernel_body(proc):
            for _ in range(10):
                yield Charge(10)

        def user_body(proc):
            yield Charge(1)

        k = Process("k", body=kernel_body, dedicated=True)
        u = Process("u", body=user_body)
        tc.add_process(k)
        tc.add_process(u)
        run(tc)
        assert k.preemptions == 0


class TestVirtualProcessorLayer:
    def test_vp_table_fixed_size(self):
        vpt = VirtualProcessorTable(4)
        assert len(vpt) == 4
        with pytest.raises(ValueError):
            VirtualProcessorTable(1)

    def test_dedication_consumes_vp(self):
        vpt = VirtualProcessorTable(3)
        p = Process("k", dedicated=True)
        vp = vpt.dedicate(p)
        assert vp.is_dedicated
        assert vpt.dedicated_total == 1
        assert vpt.pooled_total == 2

    def test_cannot_dedicate_last_pooled_vp(self):
        vpt = VirtualProcessorTable(2)
        vpt.dedicate(Process("k1", dedicated=True))
        with pytest.raises(RuntimeError):
            vpt.dedicate(Process("k2", dedicated=True))

    def test_release_dedicated_vp_forbidden(self):
        vpt = VirtualProcessorTable(3)
        p = Process("k", dedicated=True)
        vpt.dedicate(p)
        with pytest.raises(RuntimeError):
            vpt.release(p)

    def test_acquire_and_release(self):
        vpt = VirtualProcessorTable(2)
        a, b, c = Process("a"), Process("b"), Process("c")
        assert vpt.acquire(a) is not None
        assert vpt.acquire(b) is not None
        assert vpt.acquire(c) is None  # pool exhausted
        vpt.release(a)
        assert vpt.acquire(c) is not None

    def test_more_processes_than_vps_all_complete(self, config):
        """Level 2 multiplexes 'any desired number' of processes onto
        the fixed VP population."""
        config.n_virtual_processors = 2
        config.n_processors = 1
        tc = TrafficController(Simulator(), config)

        def body(proc):
            yield Charge(10)
            yield Block(tc.create_channel(f"ch.{proc.pid}"))

        def simple(proc):
            yield Charge(10)

        procs = [Process(f"p{i}", body=simple) for i in range(8)]
        for p in procs:
            tc.add_process(p)
        run(tc)
        assert all(p.state is ProcessState.STOPPED for p in procs)
        assert tc.vp_waits > 0  # some had to wait for a VP

    def test_blocked_process_yields_vp_to_waiter(self, config):
        config.n_virtual_processors = 2
        config.n_processors = 1
        tc = TrafficController(Simulator(), config)
        ch = tc.create_channel("rendezvous")
        log = []

        def blocker(proc):
            yield Charge(1)
            yield Block(ch)
            log.append("blocker-woke")

        def late(proc):
            yield Charge(1)
            log.append("late-ran")
            yield Wakeup(ch)

        blockers = [Process(f"b{i}", body=blocker) for i in range(2)]
        for p in blockers:
            tc.add_process(p)
        lateproc = Process("late", body=late)
        tc.add_process(lateproc)  # no VP free at admission
        assert lateproc.state is ProcessState.WAITING_VP
        run(tc)
        assert "late-ran" in log
        assert "blocker-woke" in log


class TestStructuralClaims:
    def test_level1_does_not_import_vm_or_fs(self):
        """Paper: the first layer 'need not depend on the facilities for
        managing the virtual memory'."""
        import ast
        import inspect

        import repro.proc.virtual_processor as level1

        tree = ast.parse(inspect.getsource(level1))
        imported = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                imported.update(alias.name for alias in node.names)
            elif isinstance(node, ast.ImportFrom) and node.module:
                imported.add(node.module)
        assert not any(m.startswith(("repro.vm", "repro.fs")) for m in imported)


class TestAdvisorRobustness:
    def test_raising_advisor_falls_back_to_fifo(self, config):
        """A dispatch advisor that raises must not wedge the scheduler:
        dispatch falls back to FIFO and the failure is counted."""
        tc = TrafficController(Simulator(), config)

        def bad_advisor(ready):
            raise RuntimeError("policy bug")

        tc.dispatch_advisor = bad_advisor
        order = []

        def body(name):
            def gen(proc):
                order.append(name)
                yield Charge(1)

            return gen

        def busy(proc):
            yield Charge(10)

        # Occupy the processor so two user processes queue up; only
        # then is the advisor consulted (len(ready) > 1).
        tc.add_process(Process("busy", body=busy))
        tc.add_process(Process("a", body=body("a")))
        tc.add_process(Process("b", body=body("b")))
        run(tc)
        assert order == ["a", "b"]  # FIFO despite the broken advisor
        assert tc.advisor_failures > 0
        assert all(p.state is ProcessState.STOPPED for p in tc.processes)

    def test_advisor_failure_counter_starts_at_zero(self, config):
        tc = TrafficController(Simulator(), config)
        assert tc.advisor_failures == 0

    def test_bool_advisor_is_broken_advice_not_index_one(self, config):
        """``bool`` is an ``int`` subtype: an advisor returning True
        must be counted as a failure and fall back to FIFO, never be
        honoured as index 1 (which would silently reorder dispatch)."""
        tc = TrafficController(Simulator(), config)
        tc.dispatch_advisor = lambda ready: True
        order = []

        def body(name):
            def gen(proc):
                order.append(name)
                yield Charge(1)

            return gen

        def busy(proc):
            yield Charge(10)

        tc.add_process(Process("busy", body=busy))
        tc.add_process(Process("a", body=body("a")))
        tc.add_process(Process("b", body=body("b")))
        run(tc)
        # True-as-index-1 would have produced ["b", "a"].
        assert order == ["a", "b"]
        assert tc.advisor_failures > 0
        assert all(p.state is ProcessState.STOPPED for p in tc.processes)


class TestVpWaitFifo:
    def test_vp_wait_fifo_across_block_unblock(self, config):
        """Re-admitted blockers queue *behind* processes already waiting
        for a virtual processor, in wakeup order — no queue jumping
        across block/unblock cycles."""
        config.n_virtual_processors = 2
        config.n_processors = 1
        config.quantum = 100
        tc = TrafficController(Simulator(), config)
        ran = []
        ch0 = tc.create_channel("p0.wake")
        ch1 = tc.create_channel("p1.wake")

        def blocker(name, ch):
            def gen(proc):
                yield Charge(1)
                yield Block(ch)
                ran.append(name)
                yield Charge(1)

            return gen

        def hog(name):
            def gen(proc):
                ran.append(name)
                yield Charge(50)

            return gen

        tc.add_process(Process("p0", body=blocker("p0", ch0)))
        tc.add_process(Process("p1", body=blocker("p1", ch1)))
        for i in range(4):
            tc.add_process(Process(f"w{i}", body=hog(f"w{i}")))
        # Wake the blockers while w0/w1 still hold both VPs: p1 and p0
        # must park behind w2 and w3, in wakeup order.
        tc.sim.schedule(10, lambda: tc.send_wakeup(ch1))
        tc.sim.schedule(11, lambda: tc.send_wakeup(ch0))
        run(tc)
        assert ran == ["w0", "w1", "w2", "w3", "p1", "p0"]
        assert all(p.state is ProcessState.STOPPED for p in tc.processes)
