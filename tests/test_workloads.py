"""Tests for the workload engine (repro.workloads): seeded arrival
processes, population generation, the report's percentile math, and the
batch session driver end to end at small scale — including the
determinism contract bench E18 leans on (same config + population ->
same simulated clock and metrics, run to run).
"""

import json

import pytest

from repro import MulticsSystem, kernel_config, legacy_config
from repro.workloads import (
    DEFAULT_MIX,
    PROFILES,
    UserSpec,
    WorkloadDriver,
    WorkloadReport,
    bursty_arrivals,
    generate_population,
    poisson_arrivals,
)

N_SMOKE = 12


class TestArrivals:
    def test_poisson_is_a_pure_function_of_the_seed(self):
        a = poisson_arrivals(200, 400.0, seed=42)
        b = poisson_arrivals(200, 400.0, seed=42)
        assert a == b
        assert poisson_arrivals(200, 400.0, seed=43) != a

    def test_poisson_shape(self):
        times = poisson_arrivals(500, 100.0, seed=7, start=1000)
        assert len(times) == 500
        assert times == sorted(times)
        assert times[0] >= 1000
        assert all(isinstance(t, int) for t in times)
        # The mean gap lands in the right ballpark for 500 samples.
        mean = (times[-1] - 1000) / 500
        assert 60 < mean < 160

    def test_bursty_is_a_pure_function_of_the_seed(self):
        a = bursty_arrivals(200, 32, 20_000.0, seed=42)
        assert a == bursty_arrivals(200, 32, 20_000.0, seed=42)
        assert len(a) == 200
        assert a == sorted(a)

    def test_bursty_clusters_within_jitter(self):
        times = bursty_arrivals(64, 16, 50_000.0, seed=5, jitter=8)
        for at in range(0, 64, 16):
            burst = times[at:at + 16]
            assert burst[-1] - burst[0] <= 8

    def test_argument_validation(self):
        with pytest.raises(ValueError):
            poisson_arrivals(-1, 100.0, seed=1)
        with pytest.raises(ValueError):
            poisson_arrivals(5, 0.0, seed=1)
        with pytest.raises(ValueError):
            bursty_arrivals(5, 0, 100.0, seed=1)
        with pytest.raises(ValueError):
            bursty_arrivals(5, 4, -1.0, seed=1)

    def test_zero_users_is_empty(self):
        assert poisson_arrivals(0, 100.0, seed=1) == []
        assert bursty_arrivals(0, 8, 100.0, seed=1) == []

    def test_zero_rate_poisson_rejected(self):
        # A zero (or negative) rate would never produce an arrival;
        # both are configuration errors, not infinite loops.
        with pytest.raises(ValueError, match="mean_gap"):
            poisson_arrivals(5, 0.0, seed=1)
        with pytest.raises(ValueError, match="mean_gap"):
            poisson_arrivals(5, -100.0, seed=1)

    def test_single_user_population(self):
        assert len(poisson_arrivals(1, 400.0, seed=3)) == 1
        assert len(bursty_arrivals(1, 32, 20_000.0, seed=3)) == 1
        pop = generate_population(1, seed=11)
        assert len(pop) == 1
        assert pop[0].person == "U00000"

    def test_partial_final_burst_respects_n(self):
        # 20 users in bursts of 8: the last burst holds only 4 and
        # still clusters within the jitter window.
        times = bursty_arrivals(20, 8, 50_000.0, seed=4)
        assert len(times) == 20
        assert times == sorted(times)
        last = times[16:]
        assert last[-1] - last[0] <= 8

    def test_burst_size_larger_than_population(self):
        times = bursty_arrivals(5, 100, 1_000.0, seed=2)
        assert len(times) == 5
        assert times[-1] - times[0] <= 8

    def test_zero_jitter_bursts_are_simultaneous(self):
        times = bursty_arrivals(16, 8, 50_000.0, seed=6, jitter=0)
        assert len(set(times[:8])) == 1
        assert len(set(times[8:])) == 1

    def test_start_offset_shifts_arrivals(self):
        # Same seed, shifted origin: the shape is seed-stable and the
        # offset lands verbatim in every arrival time.
        base = poisson_arrivals(50, 200.0, seed=8)
        moved = poisson_arrivals(50, 200.0, seed=8, start=5000)
        assert moved == [t + 5000 for t in base]
        base = bursty_arrivals(24, 8, 10_000.0, seed=8)
        moved = bursty_arrivals(24, 8, 10_000.0, seed=8, start=5000)
        assert moved == [t + 5000 for t in base]


class TestPopulation:
    def test_same_seed_same_population(self):
        a = generate_population(100, seed=1975)
        b = generate_population(100, seed=1975)
        assert a == b
        assert generate_population(100, seed=1976) != a

    def test_population_shape(self):
        pop = generate_population(50, seed=3)
        assert len(pop) == 50
        assert all(isinstance(spec, UserSpec) for spec in pop)
        assert len({spec.person for spec in pop}) == 50
        assert all(spec.profile.name in PROFILES for spec in pop)

    def test_mix_weights_are_respected(self):
        pop = generate_population(400, seed=9, mix={"shell": 1.0})
        assert {spec.profile.name for spec in pop} == {"shell"}

    def test_unknown_mix_profile_rejected(self):
        with pytest.raises(ValueError, match="unknown profiles"):
            generate_population(10, seed=1, mix={"emacs": 1.0})

    def test_unknown_arrival_process_rejected(self):
        with pytest.raises(ValueError, match="unknown arrival process"):
            generate_population(10, seed=1, process="lunchtime")

    def test_bursty_process_selectable(self):
        pop = generate_population(40, seed=2, process="bursty",
                                  burst_size=8)
        assert len(pop) == 40

    def test_default_mix_covers_known_profiles(self):
        assert set(DEFAULT_MIX) <= set(PROFILES)
        assert all(w > 0 for w in DEFAULT_MIX.values())


class TestWorkloadReport:
    def test_nearest_rank_percentiles(self):
        report = WorkloadReport()
        report.latencies = list(range(1, 101))
        assert report.latency_percentile(0.0) == 1
        assert report.p50_latency == 51
        assert report.p95_latency == 95
        assert report.latency_percentile(1.0) == 100

    def test_empty_sample_is_zero(self):
        report = WorkloadReport()
        assert report.p50_latency == 0
        assert report.p95_latency == 0

    def test_rates_guard_zero_wall(self):
        report = WorkloadReport(admitted=5)
        assert report.users_per_sec == 0.0
        assert report.cycles_per_sec == 0.0
        report.wall_seconds = 2.0
        assert report.users_per_sec == 2.5

    def test_percentile_clamps_out_of_range_quantiles(self):
        report = WorkloadReport()
        report.latencies = [10, 20, 30]
        assert report.latency_percentile(-0.5) == 10
        assert report.latency_percentile(1.5) == 30
        assert WorkloadReport().latency_percentile(-1.0) == 0

    def test_to_dict_names_the_bench_fields(self):
        keys = {"users", "admitted", "login_failures", "jobs_completed",
                "jobs_failed", "elapsed_cycles", "wall_seconds",
                "users_per_sec", "cycles_per_sec", "p50_latency_cycles",
                "p95_latency_cycles"}
        assert set(WorkloadReport().to_dict()) == keys
        # The cProfile dump only appears when a profiled run filled it.
        profiled = WorkloadReport(profile="ncalls tottime ...")
        assert set(profiled.to_dict()) == keys | {"profile"}


def drive(n=N_SMOKE, seed=1975, **config):
    system = MulticsSystem(kernel_config(**config)).boot()
    driver = WorkloadDriver(system, n_cpus=2)
    report = driver.run(generate_population(n, seed=seed))
    return system, driver, report


class TestWorkloadDriver:
    def test_small_population_end_to_end(self):
        system, driver, report = drive()
        assert report.users == N_SMOKE
        assert report.admitted == N_SMOKE
        assert report.login_failures == 0
        assert report.jobs_completed == N_SMOKE
        assert report.jobs_failed == 0
        assert len(report.latencies) == N_SMOKE
        assert all(latency > 0 for latency in report.latencies)
        assert report.elapsed_cycles > 0
        # Everyone shares the author's parsed library image: no session
        # needed a private re-baked copy.
        assert driver.code_rebinds == 0

    def test_workload_metrics_are_live(self):
        system, driver, report = drive()
        snap = system.metrics.snapshot()
        counters, gauges = snap["counters"], snap["gauges"]
        assert counters["workload.arrivals"] == N_SMOKE
        assert counters["workload.logins"] == N_SMOKE
        assert counters["workload.login_failures"] == 0
        assert counters["workload.batches"] == 1
        assert counters["workload.jobs_completed"] == N_SMOKE
        assert counters["workload.jobs_failed"] == 0
        assert counters["workload.code_rebinds"] == 0
        # The population plus the library author's own session.
        assert gauges["workload.active_sessions"] == N_SMOKE + 1
        assert "workload.latency" in snap["histograms"]

    def test_run_is_deterministic(self):
        """The E18 identity contract at unit scale: same config and
        population, same final clock and metrics snapshot."""
        fingerprints = []
        for _ in range(2):
            system, _, report = drive()
            # Serialize before the next boot: a later system's cam
            # broadcasts must not touch this snapshot.
            fingerprints.append(
                (system.clock.now, json.loads(system.metrics.to_json()),
                 report.to_dict()["p50_latency_cycles"])
            )
        assert fingerprints[0] == fingerprints[1]

    def test_fast_and_classic_cores_agree(self):
        outcomes = []
        for fast in (True, False):
            system, _, report = drive(fast_path=fast)
            outcomes.append((
                system.clock.now,
                [(r.action, r.object, r.outcome)
                 for r in system.audit.records],
                report.latencies,
            ))
        assert outcomes[0] == outcomes[1]

    def test_profiling_hook_attaches_dump(self):
        """SystemConfig.profiling wraps the run in cProfile and hangs
        the top-N dump on the report — without touching any simulated
        result (same clock as the unprofiled run)."""
        system, _, report = drive(profiling=True)
        assert report.profile
        assert "cumulative" in report.profile
        assert "profile" in report.to_dict()
        plain_system, _, plain = drive()
        assert plain.profile == ""
        assert "profile" not in plain.to_dict()
        assert system.clock.now == plain_system.clock.now
        assert report.latencies == plain.latencies

    def test_legacy_supervisor_rejected(self):
        system = MulticsSystem(legacy_config()).boot()
        with pytest.raises(ValueError, match="E14 listener"):
            WorkloadDriver(system)

    def test_bad_batch_size_rejected(self):
        system = MulticsSystem(kernel_config()).boot()
        with pytest.raises(ValueError, match="batch_size"):
            WorkloadDriver(system, batch_size=0)
