"""The timeline plane: interval sampler, SLO health monitor, the
cross-shard timeline merge, and CPU restore (the chaos plane's
recovery event the E20 storm is built from)."""

import json

import pytest

from repro import MulticsSystem, kernel_config
from repro.faults.chaos import (
    CPU_LOSS_KIND,
    CPU_LOSS_SITE,
    CPU_RESTORE_KIND,
    CPU_RESTORE_SITE,
)
from repro.hw.clock import Clock
from repro.obs import (
    HealthMonitor,
    MetricsRegistry,
    TimelineSampler,
    validate_rules,
    validate_timeline,
    validate_timeline_config,
)
from repro.workloads import WorkloadDriver, generate_population
from repro.workloads.shards import merge_timelines
from repro.workloads.shards.spec import ShardResult
from repro.workloads.driver import WorkloadReport

from tests.test_chaos import scenario, timed
from tests.test_smp import make_jobs, smp_system


def sampler_rig(interval=100, capacity=8):
    """(clock, registry, sampler, counter) over a bare registry."""
    clock = Clock()
    registry = MetricsRegistry(clock=clock)
    counter = registry.counter("work.done", "test counter")
    registry.gauge("work.level", "test gauge").set(7)
    sampler = TimelineSampler(registry, clock, interval=interval,
                              capacity=capacity)
    return clock, registry, sampler, counter


# ---------------------------------------------------------------------------
# config validation
# ---------------------------------------------------------------------------

class TestTimelineConfig:
    def test_empty_spec_is_valid(self):
        validate_timeline_config({})

    @pytest.mark.parametrize("spec,fragment", [
        ("nope", "must be a dict"),
        ({"cadence": 5}, "unknown keys"),
        ({"interval": 0}, "interval"),
        ({"interval": "fast"}, "interval"),
        ({"capacity": -1}, "capacity"),
        ({"rules": "all"}, "rules"),
        ({"rules": [{"kind": "rate_floor"}]}, "name"),
    ])
    def test_bad_specs_rejected(self, spec, fragment):
        with pytest.raises(ValueError, match=fragment):
            validate_timeline_config(spec)

    def test_system_config_validates_timeline(self):
        config = kernel_config(timeline={"interval": 0})
        with pytest.raises(ValueError, match="interval"):
            config.validate()

    def test_off_by_default(self):
        system = MulticsSystem(kernel_config()).boot()
        assert system.timeline is None
        assert system.health is None
        assert system.timeline_document() is None
        system.shutdown()


# ---------------------------------------------------------------------------
# the sampler
# ---------------------------------------------------------------------------

class TestTimelineSampler:
    def test_no_sample_before_the_boundary(self):
        clock, _reg, sampler, counter = sampler_rig(interval=100)
        counter.inc(5)
        clock.advance(50)
        assert sampler.poll() is False
        assert sampler.polls == 1
        assert list(sampler.samples) == []

    def test_boundary_sample_carries_deltas_and_levels(self):
        clock, _reg, sampler, counter = sampler_rig(interval=100)
        counter.inc(5)
        clock.advance(120)
        assert sampler.poll() is True
        [sample] = sampler.samples
        assert sample["index"] == 1
        assert sample["t"] == 120 and sample["dt"] == 120
        assert sample["counters"] == {"work.done": 5}
        assert sample["gauges"]["work.level"] == 7

    def test_deltas_reset_between_samples(self):
        clock, _reg, sampler, counter = sampler_rig(interval=100)
        counter.inc(5)
        clock.advance(100)
        sampler.poll()
        counter.inc(2)
        clock.advance(100)
        sampler.poll()
        first, second = sampler.samples
        assert first["counters"] == {"work.done": 5}
        assert second["counters"] == {"work.done": 2}

    def test_zero_deltas_are_omitted(self):
        clock, _reg, sampler, _counter = sampler_rig(interval=100)
        clock.advance(100)
        sampler.poll()
        [sample] = sampler.samples
        assert sample["counters"] == {}

    def test_one_sample_per_index(self):
        clock, _reg, sampler, _counter = sampler_rig(interval=100)
        clock.advance(250)
        assert sampler.poll() is True
        assert sampler.poll() is False  # same instant: nothing new
        clock.advance(10)
        assert sampler.poll() is False  # still inside interval 2
        assert [s["index"] for s in sampler.samples] == [2]

    def test_force_flush_advances_the_index(self):
        clock, _reg, sampler, counter = sampler_rig(interval=100)
        clock.advance(100)
        sampler.poll()
        counter.inc(3)
        clock.advance(10)  # t=110: interval 1 already sampled
        assert sampler.poll(force=True) is True
        indices = [s["index"] for s in sampler.samples]
        assert indices == [1, 2]
        assert sampler.samples[-1]["counters"] == {"work.done": 3}
        errors = validate_timeline(sampler.to_doc())
        assert errors == []

    def test_ring_evicts_oldest_and_counts_drops(self):
        clock, _reg, sampler, _counter = sampler_rig(interval=10, capacity=3)
        for _ in range(5):
            clock.advance(10)
            sampler.poll()
        assert len(sampler.samples) == 3
        assert sampler.dropped == 2
        assert [s["index"] for s in sampler.samples] == [3, 4, 5]
        assert sampler.to_doc()["dropped"] == 2

    def test_listeners_see_every_sample(self):
        clock, _reg, sampler, _counter = sampler_rig(interval=10)
        seen = []
        sampler.listeners.append(seen.append)
        for _ in range(3):
            clock.advance(10)
            sampler.poll()
        assert [s["index"] for s in seen] == [1, 2, 3]

    def test_histogram_rows_carry_interval_deltas(self):
        clock = Clock()
        registry = MetricsRegistry(clock=clock)
        hist = registry.histogram("job.latency", "test")
        sampler = TimelineSampler(registry, clock, interval=100)
        hist.observe(10)
        hist.observe(20)
        clock.advance(100)
        sampler.poll()
        hist.observe(40)
        clock.advance(100)
        sampler.poll()
        first, second = sampler.samples
        assert first["histograms"]["job.latency"]["count"] == 2
        assert first["histograms"]["job.latency"]["sum"] == 30
        assert second["histograms"]["job.latency"]["count"] == 1
        assert second["histograms"]["job.latency"]["sum"] == 40
        # Percentiles are rolling (whole-reservoir), not per-interval.
        assert second["histograms"]["job.latency"]["p95"] == 40

    def test_doc_validates_and_flags_corruption(self):
        clock, _reg, sampler, _counter = sampler_rig(interval=10)
        clock.advance(10)
        sampler.poll()
        doc = sampler.to_doc()
        assert validate_timeline(doc) == []
        assert validate_timeline("nope")
        bad = json.loads(json.dumps(doc))
        bad["samples"].append(dict(bad["samples"][0]))  # repeated index
        assert any("not after" in e for e in validate_timeline(bad))
        bad2 = json.loads(json.dumps(doc))
        bad2["samples"][0]["counters"] = {"BAD NAME": 1}
        assert any("bad metric name" in e for e in validate_timeline(bad2))

    def test_registers_its_own_instruments(self):
        clock = Clock()
        registry = MetricsRegistry(clock=clock)
        sampler = TimelineSampler(registry, clock, interval=50,
                                  metrics=registry)
        clock.advance(50)
        sampler.poll()
        snap = registry.snapshot()
        assert snap["counters"]["timeline.polls"] == 1
        assert snap["counters"]["timeline.samples"] == 1
        assert snap["counters"]["timeline.dropped"] == 0
        assert snap["gauges"]["timeline.interval"] == 50

    def test_bad_knobs_rejected(self):
        clock = Clock()
        registry = MetricsRegistry(clock=clock)
        with pytest.raises(ValueError, match="interval"):
            TimelineSampler(registry, clock, interval=0)
        with pytest.raises(ValueError, match="capacity"):
            TimelineSampler(registry, clock, capacity=0)


# ---------------------------------------------------------------------------
# the health monitor
# ---------------------------------------------------------------------------

def sample(index=0, t=100, counters=None, gauges=None, histograms=None):
    return {
        "index": index, "t": t, "dt": 100,
        "counters": counters or {}, "gauges": gauges or {},
        "histograms": histograms or {},
    }


class TestHealthMonitor:
    def test_rule_validation(self):
        validate_rules([])
        validate_rules([{"name": "r", "kind": "rate_floor",
                         "metric": "a.b", "min": 1}])
        for rules, fragment in [
            ("x", "must be a list"),
            ([{"name": "r", "kind": "bogus", "metric": "a.b"}], "kind"),
            ([{"name": "", "kind": "rate_floor", "metric": "a.b",
               "min": 1}], "name"),
            ([{"name": "r", "kind": "rate_floor", "metric": "a.b",
               "max": 1}], "unknown keys"),
            ([{"name": "r", "kind": "rate_floor", "metric": "a.b",
               "min": "lots"}], "min"),
            ([{"name": "r", "kind": "percentile_ceiling", "metric": "a.b",
               "max": 1, "q": 2}], "q"),
            ([{"name": "r", "kind": "gauge_floor", "metric": "a.b",
               "min": 1}] * 2, "duplicate"),
        ]:
            with pytest.raises(ValueError, match=fragment):
                validate_rules(rules)

    def test_rate_floor_breaches_below_min(self):
        monitor = HealthMonitor([{"name": "tput", "kind": "rate_floor",
                                  "metric": "jobs.done", "min": 5}])
        monitor.observe(sample(counters={"jobs.done": 9}))
        monitor.observe(sample(index=1, t=200, counters={"jobs.done": 2}))
        [row] = monitor.to_rows()
        assert (row["rule"], row["t"], row["value"]) == ("tput", 200, 2)

    def test_rate_floor_when_guard_skips_idle_intervals(self):
        monitor = HealthMonitor([{
            "name": "tput", "kind": "rate_floor", "metric": "jobs.done",
            "min": 5, "when": "jobs.offered",
        }])
        monitor.observe(sample())  # idle: no offered work, no breach
        assert monitor.to_rows() == []
        monitor.observe(sample(index=1, t=200,
                               counters={"jobs.offered": 3}))
        assert [r["rule"] for r in monitor.to_rows()] == ["tput"]

    def test_rate_ceiling_and_absent_counter_reads_zero(self):
        monitor = HealthMonitor([{"name": "drops", "kind": "rate_ceiling",
                                  "metric": "audit.dropped", "max": 0}])
        monitor.observe(sample())  # absent delta == 0: within ceiling
        monitor.observe(sample(index=1, counters={"audit.dropped": 1}))
        assert [r["value"] for r in monitor.to_rows()] == [1]

    def test_gauge_rules_read_levels(self):
        monitor = HealthMonitor([
            {"name": "cap", "kind": "gauge_floor",
             "metric": "smp.cpus", "min": 2},
            {"name": "queue", "kind": "gauge_ceiling",
             "metric": "sched.ready", "max": 10},
        ])
        monitor.observe(sample(gauges={"smp.cpus": 2, "sched.ready": 3}))
        assert monitor.to_rows() == []
        monitor.observe(sample(index=1,
                               gauges={"smp.cpus": 1, "sched.ready": 30}))
        assert sorted(r["rule"] for r in monitor.to_rows()) == \
            ["cap", "queue"]

    def test_percentile_ceiling_reads_histogram_quantiles(self):
        monitor = HealthMonitor([{
            "name": "lat", "kind": "percentile_ceiling",
            "metric": "job.latency", "max": 100, "q": 0.95,
        }])
        monitor.observe(sample(histograms={
            "job.latency": {"count": 4, "sum": 100, "p50": 20, "p95": 90},
        }))
        assert monitor.to_rows() == []
        monitor.observe(sample(index=1, histograms={
            "job.latency": {"count": 4, "sum": 900, "p50": 50, "p95": 400},
        }))
        [row] = monitor.to_rows()
        assert row["value"] == 400 and row["limit"] == 100

    def test_absent_metric_skips_not_breaches(self):
        monitor = HealthMonitor([
            {"name": "cap", "kind": "gauge_floor",
             "metric": "smp.cpus", "min": 2},
            {"name": "lat", "kind": "percentile_ceiling",
             "metric": "job.latency", "max": 100},
        ])
        monitor.observe(sample())
        assert monitor.to_rows() == []

    def test_breach_log_is_bounded(self):
        monitor = HealthMonitor(
            [{"name": "cap", "kind": "gauge_floor",
              "metric": "smp.cpus", "min": 2}],
            log_capacity=2,
        )
        for i in range(4):
            monitor.observe(sample(index=i, t=100 * (i + 1),
                                   gauges={"smp.cpus": 0}))
        rows = monitor.to_rows()
        assert len(rows) == 2 and monitor.log_dropped == 2
        assert [r["index"] for r in rows] == [2, 3]

    def test_registers_health_instruments(self):
        registry = MetricsRegistry()
        monitor = HealthMonitor(
            [{"name": "cap", "kind": "gauge_floor",
              "metric": "smp.cpus", "min": 2}],
            metrics=registry,
        )
        monitor.observe(sample(gauges={"smp.cpus": 1}))
        snap = registry.snapshot()
        assert snap["counters"]["health.evaluations"] == 1
        assert snap["counters"]["health.breaches"] == 1
        assert snap["gauges"]["health.rules"] == 1
        assert snap["gauges"]["health.ok"] == 0


# ---------------------------------------------------------------------------
# the cross-shard merge
# ---------------------------------------------------------------------------

def shard_result(shard_id, timeline):
    return ShardResult(shard_id=shard_id, report=WorkloadReport(),
                       timeline=timeline)


def tiny_doc(t0=0, interval=100, samples=(), breaches=(), dropped=0):
    return {
        "schema": "repro.timeline/v1", "schema_version": 1,
        "t0": t0, "interval": interval, "capacity": 8,
        "dropped": dropped, "samples": list(samples),
        "breaches": list(breaches),
    }


class TestMergeTimelines:
    def test_none_when_no_shard_carried_one(self):
        assert merge_timelines([shard_result(0, None)]) is None
        assert merge_timelines([]) is None

    def test_single_shard_folds_to_itself(self):
        doc = tiny_doc(samples=[sample(index=0, counters={"a.b": 3})])
        merged = merge_timelines([shard_result(0, doc)])
        assert merged["n_shards"] == 1
        assert merged["samples"][0]["counters"] == {"a.b": 3}
        assert validate_timeline(merged) == []

    def test_misaligned_cadence_raises(self):
        with pytest.raises(ValueError, match="does not align"):
            merge_timelines([
                shard_result(0, tiny_doc(interval=100)),
                shard_result(1, tiny_doc(interval=200)),
            ])

    def test_index_buckets_sum_and_percentiles_take_max(self):
        left = tiny_doc(samples=[sample(
            index=0, t=100,
            counters={"a.b": 3},
            gauges={"g.x": 1},
            histograms={"h.x": {"count": 2, "sum": 10, "p95": 9}},
        )])
        right = tiny_doc(samples=[sample(
            index=0, t=150,
            counters={"a.b": 4, "c.d": 1},
            gauges={"g.x": 2},
            histograms={"h.x": {"count": 1, "sum": 5, "p95": 30}},
        )])
        merged = merge_timelines(
            [shard_result(1, right), shard_result(0, left)]
        )
        [row] = merged["samples"]
        assert row["t"] == 150
        assert row["counters"] == {"a.b": 7, "c.d": 1}
        assert row["gauges"] == {"g.x": 3}
        assert row["histograms"]["h.x"] == \
            {"count": 3, "sum": 15, "p95": 30}

    def test_breaches_tagged_and_ordered(self):
        breach = {"t": 100, "index": 0, "rule": "cap",
                  "kind": "gauge_floor", "value": 1, "limit": 2}
        merged = merge_timelines([
            shard_result(1, tiny_doc(breaches=[breach])),
            shard_result(0, tiny_doc(breaches=[breach])),
        ])
        assert [b["shard_id"] for b in merged["breaches"]] == [0, 1]
        assert validate_timeline(merged) == []


# ---------------------------------------------------------------------------
# CPU restore (the chaos plane's recovery event)
# ---------------------------------------------------------------------------

class TestCpuRestore:
    def test_restore_guards(self):
        system = smp_system(n_cpus=2)
        cx = system.cpu_complex(n_cpus=2)
        with pytest.raises(ValueError, match="no CPU 7"):
            cx.restore_cpu(7)
        with pytest.raises(ValueError, match="already online"):
            cx.restore_cpu(1)
        system.shutdown()

    def test_lose_then_restore_round_trips(self):
        system = smp_system(n_cpus=2)
        cx = system.cpu_complex(n_cpus=2)
        cx.lose_cpu(1)
        assert cx.online_count() == 1
        cx.restore_cpu(1)
        assert cx.online_count() == 2 and cx.online(1)
        assert cx.cpus_restored == 1
        snap = system.metrics.snapshot()
        assert snap["counters"]["smp.cpus_restored"] == 1
        system.shutdown()

    def test_scenario_loss_and_restore_complete_all_jobs(self):
        system = smp_system(n_cpus=2)
        cx = system.cpu_complex(n_cpus=2)
        jobs, _sessions = make_jobs(system, n_jobs=6)
        engine = system.chaos_engine(scenario(
            timed(
                {"at": 600, "site": CPU_LOSS_SITE,
                 "kind": CPU_LOSS_KIND, "cpu": 1},
                {"at": 2000, "site": CPU_RESTORE_SITE,
                 "kind": CPU_RESTORE_KIND},
            ),
        ), complex_=cx)
        cx.run_jobs(jobs, on_round=engine.step)
        assert [site for _, site, _ in engine.applied] == \
            [CPU_LOSS_SITE, CPU_RESTORE_SITE]
        assert cx.online_count() == 2
        assert [j.result for j in jobs] == [96] * 6
        # Restore is a *recovery*, not an injected fault: the injected
        # book must still equal the commanded-fault count (R2's
        # invariant), and the recovery is booked as such.
        assert engine.injector.injected_count == 1
        assert engine.injector.recovered >= 1
        system.shutdown()

    def test_restore_with_everything_online_is_skipped(self):
        system = smp_system(n_cpus=2)
        cx = system.cpu_complex(n_cpus=2)
        engine = system.chaos_engine(scenario(
            timed({"at": 0, "site": CPU_RESTORE_SITE,
                   "kind": CPU_RESTORE_KIND}),
        ), complex_=cx)
        system.clock.advance(1)
        engine.step()
        assert engine.applied == []
        assert engine.skipped and engine.skipped[0][1] == CPU_RESTORE_SITE
        system.shutdown()

    def test_restore_without_complex_raises(self):
        system = smp_system(n_cpus=2)
        engine = system.chaos_engine(scenario(
            timed({"at": 0, "site": CPU_RESTORE_SITE,
                   "kind": CPU_RESTORE_KIND}),
        ))
        system.clock.advance(1)
        with pytest.raises(ValueError, match="no SMP complex"):
            engine.step()
        system.shutdown()


# ---------------------------------------------------------------------------
# end to end through the system facade
# ---------------------------------------------------------------------------

def driver_run(n_users=30, rules=None):
    config = kernel_config(timeline={
        "interval": 5000,
        **({"rules": rules} if rules is not None else {}),
    })
    system = MulticsSystem(config).boot()
    driver = WorkloadDriver(system, n_cpus=2, batch_size=8)
    driver.run(generate_population(n_users, seed=11))
    return system


class TestEndToEnd:
    def test_driver_run_produces_a_valid_document(self):
        system = driver_run()
        doc = system.timeline_document()
        assert validate_timeline(doc) == []
        assert doc["samples"], "a real run must produce samples"
        assert any(s["counters"] for s in doc["samples"])
        system.shutdown()

    def test_same_seed_same_bytes(self):
        docs = [
            json.dumps(driver_run().timeline_document(), sort_keys=True)
            for _ in range(2)
        ]
        assert docs[0] == docs[1]

    def test_health_rules_ride_the_config(self):
        system = driver_run(rules=[
            {"name": "impossible", "kind": "rate_ceiling",
             "metric": "smp.busy_cycles", "max": 0},
        ])
        doc = system.timeline_document()
        assert doc["breaches"], "busy cycles must trip a zero ceiling"
        assert all(b["rule"] == "impossible" for b in doc["breaches"])
        assert system.metrics.snapshot()["gauges"]["health.ok"] == 0
        system.shutdown()
