"""Coverage for the remaining seams: the login listener, the legacy
device gates, metrics dataclasses, and CPU execution under real memory
pressure."""

import pytest

from repro.errors import AuthenticationError, InvalidArgument, KernelDenial
from repro.hw.cpu import Instruction as I
from repro.hw.cpu import Op
from repro.user.object_format import ObjectSegment


class TestLoginListener:
    def test_failed_attempts_counted(self, kernel_system):
        listener = kernel_system.listener
        before = listener.failed_attempts
        with pytest.raises((AuthenticationError, KernelDenial)):
            listener.login("Alice", "Crypto", "wrong")
        assert listener.failed_attempts == before + 1
        assert any("incorrect" in line for line in listener.transcript)

    def test_session_accounting(self, kernel_system):
        listener = kernel_system.listener
        before = listener.active_count
        session = kernel_system.login("Alice", "Crypto", "alice-pw")
        assert listener.active_count == before + 1
        assert listener.whoami(session.session_id) == "Alice.Crypto"
        session.logout()
        assert listener.active_count == before

    def test_logout_unknown_session(self, kernel_system):
        with pytest.raises(KeyError):
            kernel_system.listener.logout(99999)

    def test_greeting_in_transcript(self, kernel_system):
        kernel_system.login("Alice", "Crypto", "alice-pw")
        assert kernel_system.listener.greeting in kernel_system.listener.transcript


class TestLegacyAnsweringService:
    def test_whoami_and_sessions(self, legacy_system):
        from repro.config import USER_RING
        from repro.proc.process import Process
        from repro.security.principal import KERNEL_PRINCIPAL

        session = legacy_system.login("Alice", "Crypto", "alice-pw")
        driver = Process("drv", ring=USER_RING, principal=KERNEL_PRINCIPAL)
        sup = legacy_system.supervisor
        assert sup.call(driver, "as_$whoami", session.session_id) == "Alice.Crypto"
        sessions = sup.call(driver, "as_$list_sessions")
        assert any(s[1] == "Alice" for s in sessions)

    def test_change_password(self, legacy_system):
        from repro.config import USER_RING
        from repro.proc.process import Process
        from repro.security.principal import KERNEL_PRINCIPAL

        driver = Process("drv", ring=USER_RING, principal=KERNEL_PRINCIPAL)
        sup = legacy_system.supervisor
        sup.call(driver, "as_$change_password", "Alice", "alice-pw", "new-pw")
        with pytest.raises((AuthenticationError, KernelDenial)):
            legacy_system.login("Alice", "Crypto", "alice-pw")
        assert legacy_system.login("Alice", "Crypto", "new-pw")

    def test_change_password_wrong_old(self, legacy_system):
        from repro.config import USER_RING
        from repro.proc.process import Process
        from repro.security.principal import KERNEL_PRINCIPAL

        driver = Process("drv", ring=USER_RING, principal=KERNEL_PRINCIPAL)
        with pytest.raises(AuthenticationError):
            legacy_system.supervisor.call(
                driver, "as_$change_password", "Alice", "nope", "new"
            )


class TestLegacyDeviceGates:
    def test_terminal_gates(self, legacy_system):
        session = legacy_system.login("Alice", "Crypto", "alice-pw")
        # tty1 may be held by the login session already; use detach-safe flow.
        tty = legacy_system.services.devices["tty1"]
        if tty.attached_by is not None:
            tty.detach(tty.attached_by)
        session.call("ios_$tty_attach", "tty1")
        session.call("ios_$tty_write", "tty1", "hello terminal")
        assert "hello terminal" in tty.output
        tty.type_line("typed input")
        assert session.call("ios_$tty_read", "tty1") == "typed input"
        session.call("ios_$tty_detach", "tty1")

    def test_tape_gates(self, legacy_system):
        session = legacy_system.login("Alice", "Crypto", "alice-pw")
        session.call("ios_$tape_attach", "tape1")
        session.call("ios_$tape_write", "tape1", [1, 2, 3])
        legacy_system.services.devices["tape1"].rewind(session.process.pid)
        assert session.call("ios_$tape_read", "tape1") == [1, 2, 3]
        session.call("ios_$tape_detach", "tape1")

    def test_unit_record_gates(self, legacy_system):
        session = legacy_system.login("Alice", "Crypto", "alice-pw")
        legacy_system.services.devices["rdr1"].load_deck(["a card"])
        assert session.call("ios_$card_read", "rdr1") == "a card"
        session.call("ios_$card_punch", "pun1", "punched")
        assert legacy_system.services.devices["pun1"].stacker == ["punched"]
        session.call("ios_$print_line", "prt1", "printed line")
        assert legacy_system.services.devices["prt1"].lines_printed == 1

    def test_wrong_device_class_rejected(self, legacy_system):
        session = legacy_system.login("Alice", "Crypto", "alice-pw")
        with pytest.raises(InvalidArgument):
            session.call("ios_$tape_read", "tty1")

    def test_kernel_has_no_device_gates(self, kernel_system):
        from repro.kernel.gates import GateViolationError

        session = kernel_system.login("Alice", "Crypto", "alice-pw")
        with pytest.raises(GateViolationError):
            session.call("ios_$print_line", "prt1", "x")

    def test_network_gates_on_both(self, any_system):
        session = any_system.login("Alice", "Crypto", "alice-pw")
        session.call("net_$attach")
        seq = session.call("net_$send", "remote-host", "ping")
        assert seq >= 1
        any_system.services.network.deliver("remote-host", "pong")
        message = session.call("net_$receive")
        assert message["body"] == "pong"
        status = session.call("net_$status")
        assert status["lost"] == 0
        session.call("net_$detach")


class TestMetricsDataclasses:
    def test_gate_census_removable(self):
        from repro.kernel.legacy import build_legacy
        from repro.kernel.metrics import gate_census

        census = gate_census(build_legacy())
        assert census.removable == census.user_available - census.by_removal["kept"]

    def test_size_report_total(self):
        from repro.kernel.kernel import build_kernel
        from repro.kernel.metrics import protected_code_report

        size = protected_code_report(build_kernel())
        assert size.total == sum(size.per_module.values())
        assert all(v > 0 for v in size.per_module.values())

    def test_removal_comparison_zero_before(self):
        from repro.kernel.metrics import RemovalComparison

        comparison = RemovalComparison("x", before=0, removed=0)
        assert comparison.fraction_removed == 0.0


class TestCpuUnderMemoryPressure:
    def test_program_runs_with_tiny_core(self):
        """A data-heavy program on a system whose core is smaller than
        its working set: the CPU's fault hook drives real page control
        throughout execution."""
        from repro import MulticsSystem, kernel_config

        system = MulticsSystem(
            kernel_config(core_frames=6, bulk_frames=16, disk_frames=256,
                          page_size=16)
        ).boot()
        system.register_user("Alice", "Crypto", "pw")
        session = system.login("Alice", "Crypto", "pw")
        data_segno = session.create_segment("bigdata", n_pages=8)

        # sum words 0..63 of the data segment (all pages touched).
        program = ObjectSegment(
            "summer",
            code=[
                I(Op.PUSHI, 0), I(Op.STOREF, 0),   # acc
                I(Op.PUSHI, 0), I(Op.STOREF, 1),   # i
                # loop:
                I(Op.LOADF, 1), I(Op.PUSHI, 64), I(Op.LT), I(Op.JZ, 18),
                I(Op.LOADF, 0), I(Op.LOADF, 1), I(Op.LOADI, data_segno),
                I(Op.ADD), I(Op.STOREF, 0),
                I(Op.LOADF, 1), I(Op.PUSHI, 1), I(Op.ADD), I(Op.STOREF, 1),
                I(Op.JMP, 4),
                I(Op.LOADF, 0), I(Op.RET),
            ],
            definitions={"main": 0},
        )
        session.write_words(data_segno, [2] * 64)
        prog_segno = session.install_object("summer", program)
        faults_before = system.services.page_control.faults_serviced
        assert session.run_program(prog_segno) == 128
        assert system.services.page_control.faults_serviced > faults_before
