"""End-to-end tests of the public API, run against both supervisors."""

import pytest

from repro.errors import (
    AccessDenied,
    AuthenticationError,
    KernelDenial,
    NameDuplication,
    NoSuchEntry,
)
from repro.hw.cpu import Instruction as I
from repro.hw.cpu import Op
from repro.security.mac import SecurityLabel
from repro.user.object_format import ObjectSegment


class TestLoginLogout:
    def test_login_creates_session_with_home(self, any_system):
        session = any_system.login("Alice", "Crypto", "alice-pw")
        assert str(session.principal) == "Alice.Crypto.a"
        assert session.home_path == ">udd>Crypto>Alice"

    def test_wrong_password_rejected(self, any_system):
        with pytest.raises((AuthenticationError, KernelDenial)):
            any_system.login("Alice", "Crypto", "wrong")

    def test_unknown_user_rejected(self, any_system):
        with pytest.raises((AuthenticationError, KernelDenial)):
            any_system.login("Mallory", "Crypto", "x")

    def test_wrong_project_rejected(self, any_system):
        with pytest.raises((AuthenticationError, KernelDenial)):
            any_system.login("Alice", "Spies", "alice-pw")

    def test_logout(self, any_system):
        session = any_system.login("Alice", "Crypto", "alice-pw")
        session.logout()
        assert session.process.pid not in any_system.services.created_processes

    def test_two_sessions_share_the_hierarchy(self, any_system):
        alice = any_system.login("Alice", "Crypto", "alice-pw")
        bob = any_system.login("Bob", "Crypto", "bob-pw")
        alice.create_segment("shared_note")
        alice.set_acl("shared_note", "Bob.Crypto", "r")
        listing = bob.list_dir(">udd>Crypto>Alice")
        assert any(e["name"] == "shared_note" for e in listing)


class TestSegmentsAndData:
    def test_create_write_read(self, any_system):
        session = any_system.login("Alice", "Crypto", "alice-pw")
        segno = session.create_segment("data", n_pages=2)
        words = list(range(20))
        session.write_words(segno, words)
        assert session.read_words(segno, 20) == words

    def test_data_survives_terminate_and_reinitiate(self, any_system):
        session = any_system.login("Alice", "Crypto", "alice-pw")
        segno = session.create_segment("persist")
        session.write_words(segno, [7, 8, 9])
        session.call("hcs_$terminate", segno)
        segno2 = session.initiate(f"{session.home_path}>persist")
        assert session.read_words(segno2, 3) == [7, 8, 9]

    def test_delete_removes_entry(self, any_system):
        session = any_system.login("Alice", "Crypto", "alice-pw")
        session.create_segment("doomed")
        session.delete("doomed")
        with pytest.raises((NoSuchEntry, KernelDenial)):
            session.initiate(f"{session.home_path}>doomed")

    def test_duplicate_name_rejected(self, any_system):
        session = any_system.login("Alice", "Crypto", "alice-pw")
        session.create_segment("x")
        with pytest.raises(NameDuplication):
            session.create_segment("x")

    def test_status(self, any_system):
        session = any_system.login("Alice", "Crypto", "alice-pw")
        session.create_segment("s", n_pages=3)
        status = session.status("s")
        assert status["type"] == "segment"
        assert status["n_pages"] == 3
        assert status["author"] == "Alice.Crypto.a"

    def test_directories_nest(self, any_system):
        session = any_system.login("Alice", "Crypto", "alice-pw")
        session.create_dir("project")
        session.create_dir("project>src")
        session.create_segment("project>src>main", n_pages=1)
        names = [e["name"] for e in session.list_dir("project>src")]
        assert names == ["main"]


class TestDiscretionaryAccess:
    def test_acl_denies_unlisted_reader(self, any_system):
        alice = any_system.login("Alice", "Crypto", "alice-pw")
        eve = any_system.login("Eve", "Spies", "eve-pw")
        segno = alice.create_segment("private_note")
        alice.write_words(segno, [42])
        # Default ACL: owner only; Eve cannot initiate for reading.
        with pytest.raises((AccessDenied, KernelDenial)):
            eve.initiate(">udd>Crypto>Alice>private_note")

    def test_acl_grant_enables_sharing(self, any_system):
        alice = any_system.login("Alice", "Crypto", "alice-pw")
        bob = any_system.login("Bob", "Crypto", "bob-pw")
        segno = alice.create_segment("shared")
        alice.write_words(segno, [42])
        alice.set_acl("shared", "Bob.Crypto", "r")
        bob_segno = bob.initiate(">udd>Crypto>Alice>shared")
        assert bob.read_words(bob_segno, 1) == [42]

    def test_read_only_grant_blocks_writes_in_hardware(self, any_system):
        from repro.errors import AccessViolation

        alice = any_system.login("Alice", "Crypto", "alice-pw")
        bob = any_system.login("Bob", "Crypto", "bob-pw")
        alice.create_segment("readonly")
        alice.set_acl("readonly", "Bob.Crypto", "r")
        bob_segno = bob.initiate(">udd>Crypto>Alice>readonly")
        with pytest.raises(AccessViolation):
            bob.write_words(bob_segno, [1])

    def test_acl_list_roundtrip(self, any_system):
        alice = any_system.login("Alice", "Crypto", "alice-pw")
        alice.create_segment("s")
        alice.set_acl("s", "Bob.Crypto", "rw")
        dir_segno, name = alice.resolve_parent("s")
        entries = alice.call("hcs_$acl_list", dir_segno, name)
        assert ("Bob.Crypto.*", "rw") in entries


class TestProgramExecution:
    LIB = ObjectSegment(
        "mathlib",
        code=[I(Op.LOADF, 0), I(Op.LOADF, 0), I(Op.MUL), I(Op.RET)],
        definitions={"square": 0},
    )
    MAIN = ObjectSegment(
        "main",
        code=[I(Op.PUSHI, 6), I(Op.CALLL, 0, 1), I(Op.RET)],
        definitions={"main": 0},
        links=["mathlib$square"],
    )

    def test_run_simple_program(self, any_system):
        session = any_system.login("Alice", "Crypto", "alice-pw")
        obj = ObjectSegment(
            "answer",
            code=[I(Op.PUSHI, 40), I(Op.PUSHI, 2), I(Op.ADD), I(Op.RET)],
            definitions={"main": 0},
        )
        segno = session.install_object("answer", obj)
        assert session.run_program(segno) == 42

    def test_dynamic_linking_across_segments(self, any_system):
        session = any_system.login("Alice", "Crypto", "alice-pw")
        lib_segno = session.install_object("mathlib", self.LIB)
        main_segno = session.install_object("main", self.MAIN)
        session.load_program(lib_segno)
        if session.linker is not None:
            session.refnames.bind("mathlib", lib_segno)
        else:
            session.call("hcs_$add_refname", lib_segno, "mathlib")
        assert session.run_program(main_segno) == 36

    def test_linking_resolves_through_search(self, any_system):
        """The fault-driven path: no pre-bound refname; the linker
        searches the working directory."""
        session = any_system.login("Alice", "Crypto", "alice-pw")
        lib_segno = session.install_object("mathlib", self.LIB)
        main_segno = session.install_object("main", self.MAIN)
        if session.linker is None:
            session.call("lk_$make_linkage", lib_segno)
        assert session.run_program(main_segno) == 36

    def test_arguments_passed(self, any_system):
        session = any_system.login("Alice", "Crypto", "alice-pw")
        obj = ObjectSegment(
            "addone",
            code=[I(Op.LOADF, 0), I(Op.PUSHI, 1), I(Op.ADD), I(Op.RET)],
            definitions={"main": 0},
        )
        segno = session.install_object("addone", obj)
        assert session.run_program(segno, "main", [9]) == 10


class TestShell:
    def test_basic_script(self, any_system):
        from repro.user.shell import Shell

        session = any_system.login("Alice", "Crypto", "alice-pw")
        shell = Shell(session)
        code = shell.run_script(
            """
            mkdir work
            cd work
            create notes 2
            ls
            who
            """
        )
        assert code == 0
        assert "s notes" in shell.output
        assert "Alice.Crypto.a" in shell.output

    def test_unknown_command(self, any_system):
        from repro.user.shell import Shell

        session = any_system.login("Alice", "Crypto", "alice-pw")
        shell = Shell(session)
        assert shell.execute("frobnicate") == 1

    def test_error_reported_not_raised(self, any_system):
        from repro.user.shell import Shell

        session = any_system.login("Alice", "Crypto", "alice-pw")
        shell = Shell(session)
        assert shell.execute("delete no_such_thing") == 1
        assert any("delete:" in line for line in shell.output)


class TestBothSupervisorsAgree:
    """The same workload produces the same user-visible results on the
    legacy supervisor and the kernel — full functionality survives the
    minimization (the paper's central demonstration)."""

    def workload(self, system):
        session = system.login("Alice", "Crypto", "alice-pw")
        session.create_dir("proj")
        session.set_acl("proj", "Bob.Crypto", "r")
        session.set_working_dir(f"{session.home_path}>proj")
        segno = session.create_segment("data", n_pages=2)
        session.write_words(segno, [3, 1, 4, 1, 5])
        session.set_acl("data", "Bob.Crypto", "r")
        listing = sorted(e["name"] for e in session.list_dir())
        bob = system.login("Bob", "Crypto", "bob-pw")
        bob_segno = bob.initiate(">udd>Crypto>Alice>proj>data")
        data = bob.read_words(bob_segno, 5)
        return listing, data

    def test_identical_results(self, kernel_system, legacy_system):
        assert self.workload(kernel_system) == self.workload(legacy_system)
