"""Tests for protected subsystems and the unified entry mechanism."""

import pytest

from repro.errors import AccessDenied, InvalidArgument, NoSuchEntry
from repro.subsys.process_creation import make_environment
from repro.subsys.protected_subsystem import SubsystemManager


@pytest.fixture
def env(kernel_system):
    alice = kernel_system.login("Alice", "Crypto", "alice-pw")
    manager = SubsystemManager(kernel_system.services)
    return kernel_system, alice, manager


def build_mail_subsystem(manager, owner):
    """A tiny mail system: a common mechanism among consenting users."""
    mail = manager.create(owner.process, "mail", ring=2)
    mail.private_data["boxes"] = {}

    def deliver(ctx, recipient, text):
        ctx.data["boxes"].setdefault(recipient, []).append(
            (str(ctx.caller), text)
        )
        return len(ctx.data["boxes"][recipient])

    def read_box(ctx):
        me = ctx.caller.person
        return list(ctx.data["boxes"].get(me, []))

    mail.declare("deliver", deliver, n_args=2)
    mail.declare("read", read_box, n_args=0)
    return mail


class TestUnifiedMechanism:
    def test_make_environment(self, kernel_system):
        from repro.security.principal import Principal

        services = kernel_system.services
        before = len(services.created_processes)
        process = make_environment(
            services, Principal("X", "Y"), ring=2, name="env"
        )
        assert process.ring == 2
        assert len(services.created_processes) == before + 1

    def test_login_and_subsystem_entry_share_the_mechanism(self, env):
        """E14's equivalence: both paths go through make_environment /
        the proc_create gate."""
        system, alice, manager = env
        mail = build_mail_subsystem(manager, alice)
        entries_before = manager.entries_made
        manager.enter(alice.process, "mail", "deliver", "Bob", "hi")
        assert manager.entries_made == entries_before + 1

    def test_entry_environment_is_transient(self, env):
        system, alice, manager = env
        build_mail_subsystem(manager, alice)
        before = set(system.services.created_processes)
        manager.enter(alice.process, "mail", "deliver", "Bob", "hi")
        assert set(system.services.created_processes) == before


class TestProtectedSubsystem:
    def test_entry_semantics(self, env):
        system, alice, manager = env
        mail = build_mail_subsystem(manager, alice)
        bob = system.login("Bob", "Crypto", "bob-pw")
        manager.enter(alice.process, "mail", "deliver", "Bob", "lunch?")
        inbox = manager.enter(bob.process, "mail", "read")
        assert inbox == [("Alice.Crypto.a", "lunch?")]

    def test_private_data_not_reachable_from_user_ring(self, env):
        """The subsystem's segments are writable only in its ring; user
        code must enter through declared entries."""
        system, alice, manager = env
        mail = build_mail_subsystem(manager, alice)
        assert mail.brackets().in_call_bracket(alice.process.ring)
        assert not mail.brackets().may_write(alice.process.ring)

    def test_undeclared_entry_rejected(self, env):
        system, alice, manager = env
        build_mail_subsystem(manager, alice)
        with pytest.raises(NoSuchEntry):
            manager.enter(alice.process, "mail", "steal_boxes")

    def test_argument_count_checked(self, env):
        system, alice, manager = env
        build_mail_subsystem(manager, alice)
        with pytest.raises(InvalidArgument):
            manager.enter(alice.process, "mail", "deliver", "only-one")

    def test_membership_enforced(self, env):
        system, alice, manager = env
        mail = build_mail_subsystem(manager, alice)
        mail.members = {"Alice", "Bob"}
        eve = system.login("Eve", "Spies", "eve-pw")
        with pytest.raises(AccessDenied):
            manager.enter(eve.process, "mail", "read")

    def test_subsystem_ring_must_be_intermediate(self, env):
        system, alice, manager = env
        with pytest.raises(InvalidArgument):
            manager.create(alice.process, "bad", ring=0)
        with pytest.raises(InvalidArgument):
            manager.create(alice.process, "bad", ring=alice.process.ring)

    def test_duplicate_subsystem_rejected(self, env):
        system, alice, manager = env
        build_mail_subsystem(manager, alice)
        with pytest.raises(InvalidArgument):
            manager.create(alice.process, "mail", ring=2)

    def test_trojan_containment(self, env):
        """A borrowed entry handler (a trojan) runs inside the
        subsystem: it can corrupt the subsystem's own data but holds no
        handle on the caller's segments — the paper's borrowed-program
        mitigation."""
        system, alice, manager = env
        trojan_loot = []
        box = manager.create(alice.process, "borrowed", ring=3)
        box.private_data["store"] = []

        def trojan(ctx):
            # All it can see: the context. Record every attribute it
            # can reach; none of them is the caller's address space.
            trojan_loot.extend(
                name for name in dir(ctx) if not name.startswith("_")
            )
            ctx.data["store"].append("corrupted")
            return "done"

        box.declare("run", trojan, n_args=0)
        manager.enter(alice.process, "borrowed", "run")
        assert set(trojan_loot) == {"subsystem", "caller", "data"}
        # Damage is confined to the subsystem's own data.
        assert box.private_data["store"] == ["corrupted"]
