"""Tests for the active segment table."""

import pytest

from repro.hw.memory import MemoryHierarchy
from repro.vm.segment_control import ActiveSegment, ActiveSegmentTable


@pytest.fixture
def ast(config):
    return ActiveSegmentTable(MemoryHierarchy(config))


class TestActiveSegment:
    def test_fresh_segment_nothing_resident(self):
        seg = ActiveSegment(uid=1, n_pages=3)
        assert seg.n_pages == 3
        assert seg.resident_pages() == []

    def test_negative_pages_rejected(self):
        with pytest.raises(ValueError):
            ActiveSegment(uid=1, n_pages=-1)


class TestActiveSegmentTable:
    def test_activate_allocates_disk_homes(self, ast):
        seg = ast.activate(uid=7, n_pages=4)
        assert 7 in ast
        assert all(h is not None and h.level == "disk" for h in seg.homes)
        assert ast.hierarchy.disk.used_count == 4

    def test_activate_with_initial_data(self, ast, config):
        data = [[i] * config.page_size for i in range(2)]
        seg = ast.activate(uid=1, n_pages=2, initial_data=data)
        disk = ast.hierarchy.disk
        assert disk.read_page(seg.homes[0].frame) == data[0]
        assert disk.read_page(seg.homes[1].frame) == data[1]

    def test_double_activation_shares(self, ast):
        a = ast.activate(uid=3, n_pages=1)
        b = ast.activate(uid=3, n_pages=1)
        assert a is b
        assert a.connections == 2
        assert ast.activations == 1

    def test_deactivate_respects_connections(self, ast):
        ast.activate(uid=3, n_pages=1)
        ast.activate(uid=3, n_pages=1)
        ast.deactivate(3)
        assert 3 in ast
        ast.deactivate(3)
        assert 3 not in ast

    def test_deactivate_with_resident_pages_refused(self, ast):
        seg = ast.activate(uid=3, n_pages=1)
        seg.ptws[0].place(frame=0)
        with pytest.raises(RuntimeError):
            ast.deactivate(3)

    def test_get_unknown_uid(self, ast):
        with pytest.raises(KeyError):
            ast.get(99)

    def test_destroy_frees_homes(self, ast):
        ast.activate(uid=5, n_pages=3)
        before = ast.hierarchy.disk.used_count
        ast.destroy(5)
        assert ast.hierarchy.disk.used_count == before - 3
        assert 5 not in ast

    def test_home_level(self, ast):
        seg = ast.activate(uid=5, n_pages=1)
        assert ast.home_level(5, 0) is ast.hierarchy.disk
        seg.homes[0] = None
        assert ast.home_level(5, 0) is None

    def test_len(self, ast):
        ast.activate(uid=1, n_pages=1)
        ast.activate(uid=2, n_pages=1)
        assert len(ast) == 2
