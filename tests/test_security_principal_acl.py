"""Tests for principals, ACL patterns, and ACL evaluation."""

import pytest

from repro.fs.acl import Acl, AclEntry
from repro.hw.segmentation import AccessMode
from repro.security.principal import KERNEL_PRINCIPAL, Principal, PrincipalPattern


class TestPrincipal:
    def test_str(self):
        p = Principal("Alice", "Crypto")
        assert str(p) == "Alice.Crypto.a"

    def test_parse_with_and_without_tag(self):
        assert str(Principal.parse("Bob.Dev.x")) == "Bob.Dev.x"
        assert str(Principal.parse("Bob.Dev")) == "Bob.Dev.a"

    @pytest.mark.parametrize("bad", ["", "A.B.C.D", "just_one_part"])
    def test_parse_rejects(self, bad):
        with pytest.raises(ValueError):
            Principal.parse(bad)

    @pytest.mark.parametrize("person", ["", "a.b", "a*"])
    def test_component_validation(self, person):
        with pytest.raises(ValueError):
            Principal(person, "Proj")

    def test_kernel_principal(self):
        assert str(KERNEL_PRINCIPAL) == "Initializer.SysDaemon.z"

    def test_clearance_not_part_of_identity(self):
        from repro.security.mac import SecurityLabel

        a = Principal("A", "P")
        b = Principal("A", "P", clearance=SecurityLabel(3))
        assert a == b


class TestPrincipalPattern:
    def test_parse_fills_wildcards(self):
        assert str(PrincipalPattern.parse("Alice")) == "Alice.*.*"
        assert str(PrincipalPattern.parse("Alice.Crypto")) == "Alice.Crypto.*"
        assert str(PrincipalPattern.parse("*.Crypto.a")) == "*.Crypto.a"

    def test_matching(self):
        alice = Principal("Alice", "Crypto")
        assert PrincipalPattern.parse("Alice.Crypto.a").matches(alice)
        assert PrincipalPattern.parse("*.Crypto").matches(alice)
        assert PrincipalPattern.parse("*.*.*").matches(alice)
        assert not PrincipalPattern.parse("Bob").matches(alice)

    def test_specificity_ordering(self):
        exact = PrincipalPattern.parse("Alice.Crypto.a")
        person = PrincipalPattern.parse("Alice")
        project = PrincipalPattern.parse("*.Crypto")
        anyone = PrincipalPattern.parse("*.*.*")
        assert (
            exact.specificity
            > person.specificity
            > project.specificity
            > anyone.specificity
        )

    def test_bad_pattern(self):
        with pytest.raises(ValueError):
            PrincipalPattern.parse("a.b.c.d")


class TestAcl:
    def test_make_and_lookup(self):
        acl = Acl.make(("Alice.Crypto", "rw"), ("*.*.*", "r"))
        alice = Principal("Alice", "Crypto")
        bob = Principal("Bob", "Dev")
        assert acl.effective_mode(alice) == AccessMode.RW
        assert acl.effective_mode(bob) == AccessMode.R

    def test_no_match_means_no_access(self):
        acl = Acl.make(("Alice.Crypto", "rw"))
        assert acl.effective_mode(Principal("Eve", "Spy")) == AccessMode.NONE

    def test_specific_denial_overrides_general_grant(self):
        """A 'n' entry for a specific user beats '*.*.* rw'."""
        acl = Acl.make(("*.*.*", "rw"), ("Eve.Spy", "n"))
        assert acl.effective_mode(Principal("Eve", "Spy")) == AccessMode.NONE
        assert acl.effective_mode(Principal("Alice", "Crypto")) == AccessMode.RW

    def test_add_replaces_same_pattern(self):
        acl = Acl.make(("Alice.Crypto", "r"))
        acl.add("Alice.Crypto.*", "rw")
        alice = Principal("Alice", "Crypto")
        assert acl.effective_mode(alice) == AccessMode.RW
        # Same normalized pattern: only one entry remains.
        assert len(acl) == 1

    def test_remove(self):
        acl = Acl.make(("Alice.Crypto", "rw"))
        assert acl.remove("Alice.Crypto")
        assert not acl.remove("Alice.Crypto")
        assert acl.effective_mode(Principal("Alice", "Crypto")) == AccessMode.NONE

    def test_copy_is_independent(self):
        acl = Acl.make(("Alice.Crypto", "rw"))
        dup = acl.copy()
        dup.add("*.*.*", "r")
        assert len(acl) == 1
        assert len(dup) == 2

    def test_str(self):
        assert "Alice" in str(Acl.make(("Alice.Crypto", "rw")))
        assert str(Acl()) == "(empty acl)"

    def test_entry_str(self):
        entry = AclEntry.make("Alice.Crypto", "re")
        assert "re" in str(entry)
