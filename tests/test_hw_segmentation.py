"""Tests for segmentation: SDWs, PTWs, translation, access checks."""

import pytest

from repro.errors import (
    AccessViolation,
    BoundsViolation,
    MissingPageFault,
    SegmentFault,
)
from repro.hw.rings import RingBrackets, kernel_gate_brackets, user_brackets
from repro.hw.segmentation import (
    SDW,
    PTW,
    AccessMode,
    DescriptorSegment,
    Intent,
    check_access,
    translate,
)

PAGE = 16


def make_sdw(segno=1, access=AccessMode.RW, brackets=None, pages=2, in_core=True):
    ptws = [PTW() for _ in range(pages)]
    if in_core:
        for i, ptw in enumerate(ptws):
            ptw.place(frame=i)
    return SDW(
        segno=segno,
        access=access,
        brackets=brackets or user_brackets(4),
        page_table=ptws,
        bound=pages * PAGE,
    )


class TestAccessMode:
    @pytest.mark.parametrize(
        "text,mode",
        [
            ("r", AccessMode.R),
            ("rw", AccessMode.RW),
            ("re", AccessMode.RE),
            ("rew", AccessMode.REW),
            ("n", AccessMode.NONE),
            ("", AccessMode.NONE),
        ],
    )
    def test_from_string(self, text, mode):
        assert AccessMode.from_string(text) == mode

    def test_from_string_rejects_garbage(self):
        with pytest.raises(ValueError):
            AccessMode.from_string("rx")

    def test_roundtrip(self):
        for text in ("r", "re", "rw", "rew", "n"):
            assert AccessMode.from_string(text).to_string() == text


class TestDescriptorSegment:
    def test_add_get(self):
        dseg = DescriptorSegment()
        sdw = make_sdw(segno=5)
        dseg.add(sdw)
        assert dseg.get(5) is sdw
        assert 5 in dseg
        assert len(dseg) == 1

    def test_duplicate_segno_rejected(self):
        dseg = DescriptorSegment()
        dseg.add(make_sdw(segno=5))
        with pytest.raises(ValueError):
            dseg.add(make_sdw(segno=5))

    def test_missing_segno_faults(self):
        dseg = DescriptorSegment()
        with pytest.raises(SegmentFault):
            dseg.get(9)
        with pytest.raises(SegmentFault):
            dseg.remove(9)

    def test_remove(self):
        dseg = DescriptorSegment()
        dseg.add(make_sdw(segno=5))
        dseg.remove(5)
        assert 5 not in dseg

    def test_maybe(self):
        dseg = DescriptorSegment()
        assert dseg.maybe(1) is None

    def test_segnos_sorted(self):
        dseg = DescriptorSegment()
        for n in (9, 2, 5):
            dseg.add(make_sdw(segno=n))
        assert dseg.segnos() == [2, 5, 9]


class TestCheckAccess:
    def test_read_allowed(self):
        check_access(make_sdw(), ring=4, intent=Intent.READ)

    def test_read_denied_by_mode(self):
        sdw = make_sdw(access=AccessMode.W)
        with pytest.raises(AccessViolation):
            check_access(sdw, 4, Intent.READ)

    def test_read_denied_by_bracket(self):
        sdw = make_sdw(brackets=RingBrackets(0, 3, 3))
        with pytest.raises(AccessViolation):
            check_access(sdw, 4, Intent.READ)

    def test_write_denied_outside_write_bracket(self):
        """Ring 4 can read but not write a segment with r1=1: the
        fundamental kernel-data protection."""
        sdw = make_sdw(access=AccessMode.RW, brackets=RingBrackets(1, 4, 4))
        check_access(sdw, 4, Intent.READ)
        with pytest.raises(AccessViolation):
            check_access(sdw, 4, Intent.WRITE)
        check_access(sdw, 1, Intent.WRITE)

    def test_fetch_requires_execute(self):
        sdw = make_sdw(access=AccessMode.RW)
        with pytest.raises(AccessViolation):
            check_access(sdw, 4, Intent.FETCH)

    def test_fetch_in_execute_bracket(self):
        sdw = make_sdw(access=AccessMode.RE, brackets=user_brackets(4))
        check_access(sdw, 4, Intent.FETCH)

    def test_fetch_outside_brackets_denied(self):
        sdw = make_sdw(access=AccessMode.RE, brackets=RingBrackets(0, 0, 0))
        with pytest.raises(AccessViolation):
            check_access(sdw, 4, Intent.FETCH)


class TestTranslate:
    def make_dseg(self, **kwargs):
        dseg = DescriptorSegment()
        dseg.add(make_sdw(**kwargs))
        return dseg

    def test_translation_returns_frame_and_offset(self):
        dseg = self.make_dseg()
        frame, off = translate(dseg, 1, PAGE + 3, 4, Intent.READ, PAGE)
        assert (frame, off) == (1, 3)

    def test_missing_sdw_is_segment_fault(self):
        with pytest.raises(SegmentFault):
            translate(DescriptorSegment(), 1, 0, 4, Intent.READ, PAGE)

    def test_bounds_enforced(self):
        dseg = self.make_dseg(pages=2)
        with pytest.raises(BoundsViolation):
            translate(dseg, 1, 2 * PAGE, 4, Intent.READ, PAGE)
        with pytest.raises(BoundsViolation):
            translate(dseg, 1, -1, 4, Intent.READ, PAGE)

    def test_missing_page_fault(self):
        dseg = self.make_dseg(in_core=False)
        with pytest.raises(MissingPageFault) as info:
            translate(dseg, 1, PAGE, 4, Intent.READ, PAGE)
        assert info.value.segno == 1
        assert info.value.pageno == 1

    def test_access_checked_before_paging(self):
        """An access violation is detected even when the page is out of
        core — permission checking must not depend on residence."""
        dseg = self.make_dseg(access=AccessMode.R, in_core=False)
        with pytest.raises(AccessViolation):
            translate(dseg, 1, 0, 4, Intent.WRITE, PAGE)

    def test_used_and_modified_bits(self):
        dseg = self.make_dseg()
        ptw = dseg.get(1).page_table[0]
        assert not ptw.used and not ptw.modified
        translate(dseg, 1, 0, 4, Intent.READ, PAGE)
        assert ptw.used and not ptw.modified
        translate(dseg, 1, 0, 4, Intent.WRITE, PAGE)
        assert ptw.modified

    def test_ptw_place_and_evict(self):
        ptw = PTW()
        ptw.place(7)
        assert ptw.in_core and ptw.frame == 7
        ptw.evict()
        assert not ptw.in_core and ptw.frame is None
