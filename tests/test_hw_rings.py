"""Tests for ring brackets, gate checking, and call costs."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.config import NUM_RINGS, CostModel, RingMode
from repro.errors import AccessViolation, GateViolation
from repro.hw.rings import (
    KERNEL_ONLY,
    RingBrackets,
    call_check,
    call_cost,
    kernel_gate_brackets,
    user_brackets,
)


def brackets_strategy():
    return st.tuples(
        st.integers(0, NUM_RINGS - 1),
        st.integers(0, NUM_RINGS - 1),
        st.integers(0, NUM_RINGS - 1),
    ).map(sorted).map(lambda t: RingBrackets(*t))


class TestRingBrackets:
    def test_valid_construction(self):
        b = RingBrackets(0, 4, 7)
        assert (b.r1, b.r2, b.r3) == (0, 4, 7)

    @pytest.mark.parametrize("bad", [(1, 0, 0), (0, 5, 4), (-1, 0, 0), (0, 0, 8)])
    def test_invalid_construction(self, bad):
        with pytest.raises(ValueError):
            RingBrackets(*bad)

    def test_write_bracket(self):
        b = RingBrackets(1, 4, 6)
        assert b.may_write(0) and b.may_write(1)
        assert not b.may_write(2)

    def test_read_bracket(self):
        b = RingBrackets(1, 4, 6)
        assert b.may_read(4)
        assert not b.may_read(5)

    def test_execute_bracket(self):
        b = RingBrackets(1, 4, 6)
        assert not b.in_execute_bracket(0)
        assert b.in_execute_bracket(1)
        assert b.in_execute_bracket(4)
        assert not b.in_execute_bracket(5)

    def test_call_bracket(self):
        b = RingBrackets(1, 4, 6)
        assert not b.in_call_bracket(4)
        assert b.in_call_bracket(5)
        assert b.in_call_bracket(6)
        assert not b.in_call_bracket(7)

    def test_target_ring_inward_call_drops_to_r2(self):
        b = RingBrackets(0, 0, 5)
        assert b.target_ring(4) == 0

    def test_target_ring_in_bracket_unchanged(self):
        b = RingBrackets(1, 4, 6)
        assert b.target_ring(3) == 3

    def test_target_ring_outward_call_rises_to_r1(self):
        b = user_brackets(4)
        assert b.target_ring(1) == 4

    def test_target_ring_beyond_r3_denied(self):
        b = RingBrackets(0, 0, 3)
        with pytest.raises(AccessViolation):
            b.target_ring(4)

    @given(brackets_strategy(), st.integers(0, NUM_RINGS - 1))
    def test_write_implies_read(self, b, ring):
        """The write bracket is always inside the read bracket."""
        if b.may_write(ring):
            assert b.may_read(ring)

    @given(brackets_strategy(), st.integers(0, NUM_RINGS - 1))
    def test_target_ring_never_more_privileged_than_r2_bound(self, b, ring):
        """An inward call never lands below r1 and never above r2+ of
        legality; the resulting ring is always within [r1, r2] or the
        caller's own ring."""
        if ring <= b.r3:
            target = b.target_ring(ring)
            assert b.r1 <= target <= max(b.r2, ring)

    @given(brackets_strategy(), st.integers(0, NUM_RINGS - 1))
    def test_exactly_one_execution_region(self, b, ring):
        """A ring is in at most one of: execute bracket, call bracket."""
        assert not (b.in_execute_bracket(ring) and b.in_call_bracket(ring))


class TestHelpers:
    def test_kernel_only(self):
        assert KERNEL_ONLY.may_read(0)
        assert not KERNEL_ONLY.may_read(1)

    def test_kernel_gate_brackets(self):
        b = kernel_gate_brackets()
        assert b.in_call_bracket(4)
        assert b.target_ring(7) == 0

    def test_user_brackets(self):
        b = user_brackets(4)
        assert b.may_write(4)
        assert not b.may_write(5)
        assert b.in_execute_bracket(4)


class TestCallCheck:
    def test_in_ring_call_needs_no_gate(self):
        b = user_brackets(4)
        assert call_check(b, 4, 17, None) == 4

    def test_inward_call_through_gate(self):
        b = kernel_gate_brackets()
        assert call_check(b, 4, 10, frozenset({10, 20})) == 0

    def test_inward_call_missing_gate_rejected(self):
        b = kernel_gate_brackets()
        with pytest.raises(GateViolation):
            call_check(b, 4, 11, frozenset({10, 20}))

    def test_inward_call_without_any_gates_rejected(self):
        b = kernel_gate_brackets()
        with pytest.raises(GateViolation):
            call_check(b, 4, 0, None)

    def test_call_beyond_r3_denied(self):
        b = RingBrackets(0, 0, 3)
        with pytest.raises(AccessViolation):
            call_check(b, 5, 0, frozenset({0}))


class TestCallCost:
    def test_645_cross_ring_is_expensive(self):
        costs = CostModel()
        in_ring = call_cost(costs, RingMode.SOFTWARE_645, 4, 4)
        cross = call_cost(costs, RingMode.SOFTWARE_645, 4, 0)
        assert cross > in_ring * 10

    def test_6180_cross_ring_is_free(self):
        costs = CostModel()
        in_ring = call_cost(costs, RingMode.HARDWARE_6180, 4, 4)
        cross = call_cost(costs, RingMode.HARDWARE_6180, 4, 0)
        assert cross == in_ring
