"""Tests for buffers, devices, the network attachment, and interrupt
dispatch (experiments E6 and E8)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.config import CostModel, SystemConfig
from repro.errors import InvalidArgument
from repro.hw.clock import Simulator
from repro.hw.interrupts import InterruptController
from repro.io.buffers import CircularBuffer, InfiniteVMBuffer
from repro.io.devices import CardPunch, CardReader, LinePrinter, TapeDrive, Terminal
from repro.io.network import NetworkAttachment, TrafficPattern
from repro.proc.interrupt_procs import DedicatedProcessDispatch, InProcessDispatch
from repro.proc.ipc import Block, Charge, Wakeup
from repro.proc.process import Process, ProcessState
from repro.proc.scheduler import TrafficController


class TestCircularBuffer:
    def test_fifo(self):
        buf = CircularBuffer(4)
        for i in range(3):
            buf.put(i)
        assert [buf.get() for _ in range(3)] == [0, 1, 2]

    def test_overwrite_on_lap(self):
        """The paper's bug: old messages not removed before a complete
        circuit are destroyed."""
        buf = CircularBuffer(3)
        for i in range(5):
            buf.put(i)
        assert buf.lost == 2
        assert [buf.get() for _ in range(3)] == [2, 3, 4]

    def test_empty_get(self):
        buf = CircularBuffer(2)
        assert buf.get() is None
        assert buf.stats.underruns == 1

    def test_bad_capacity(self):
        with pytest.raises(ValueError):
            CircularBuffer(0)

    def test_peak_queue(self):
        buf = CircularBuffer(8)
        for i in range(5):
            buf.put(i)
        buf.get()
        assert buf.stats.peak_queue == 5


class TestInfiniteBuffer:
    def test_never_loses(self):
        buf = InfiniteVMBuffer(messages_per_page=4)
        for i in range(100):
            buf.put(i)
        assert buf.lost == 0
        assert [buf.get() for _ in range(100)] == list(range(100))

    def test_pages_allocated_through_vm(self):
        grown = []
        buf = InfiniteVMBuffer(messages_per_page=4, page_hook=lambda: grown.append(1))
        for i in range(9):
            buf.put(i)
        assert buf.pages_allocated == 3
        assert len(grown) == 3

    def test_empty_get(self):
        buf = InfiniteVMBuffer()
        assert buf.get() is None

    @given(st.lists(st.integers(), max_size=200))
    def test_exact_fifo_property(self, items):
        buf = InfiniteVMBuffer(messages_per_page=7)
        for item in items:
            assert buf.put(item) is True
        out = [buf.get() for _ in range(len(items))]
        assert out == items
        assert buf.get() is None


@pytest.fixture
def io_env():
    sim = Simulator()
    ic = InterruptController(sim.clock)
    return sim, ic


class TestDevices:
    def test_attach_discipline(self, io_env):
        sim, ic = io_env
        tty = Terminal("tty1", sim, ic, line=1)
        tty.attach(pid=1)
        with pytest.raises(InvalidArgument):
            tty.attach(pid=2)
        with pytest.raises(InvalidArgument):
            tty.detach(pid=2)
        tty.detach(pid=1)
        tty.attach(pid=2)

    def test_terminal_io(self, io_env):
        sim, ic = io_env
        tty = Terminal("tty1", sim, ic, line=1)
        tty.attach(1)
        tty.type_line("hello")
        assert tty.read_line(1) == "hello"
        assert tty.read_line(1) is None
        tty.write_line(1, "output")
        assert tty.output == ["output"]

    def test_tape(self, io_env):
        sim, ic = io_env
        tape = TapeDrive("tape1", sim, ic, line=2)
        tape.mount([[1, 2], [3, 4]])
        tape.attach(1)
        assert tape.read_record(1) == [1, 2]
        assert tape.read_record(1) == [3, 4]
        assert tape.read_record(1) is None
        tape.rewind(1)
        assert tape.read_record(1) == [1, 2]
        tape.write_record(1, [9])
        assert tape.records == [[1, 2], [9]]

    def test_cards(self, io_env):
        sim, ic = io_env
        rdr = CardReader("rdr1", sim, ic, line=3)
        pun = CardPunch("pun1", sim, ic, line=4)
        rdr.load_deck(["card one"])
        rdr.attach(1)
        pun.attach(1)
        assert rdr.read_card(1) == "card one"
        assert rdr.read_card(1) is None
        pun.punch_card(1, "out")
        assert pun.stacker == ["out"]
        with pytest.raises(InvalidArgument):
            pun.punch_card(1, "x" * 81)

    def test_printer_pagination(self, io_env):
        sim, ic = io_env
        prt = LinePrinter("prt1", sim, ic, line=5)
        prt.attach(1)
        for i in range(130):
            prt.print_line(1, f"line {i}")
        assert prt.lines_printed == 130
        assert len(prt.pages) == 3

    def test_completion_interrupts(self, io_env):
        sim, ic = io_env
        seen = []
        ic.set_interceptor(lambda i: seen.append(i.line))
        tty = Terminal("tty1", sim, ic, line=1)
        tty.attach(1)
        tty.write_line(1, "x")
        sim.run()
        assert seen == [1]


class TestNetwork:
    def make_net(self, buffer):
        sim = Simulator()
        ic = InterruptController(sim.clock)
        return NetworkAttachment(sim, ic, line=6, buffer=buffer)

    def test_deliver_and_receive(self):
        net = self.make_net(InfiniteVMBuffer())
        net.deliver("host-a", "hello")
        message = net.receive()
        assert message.body == "hello"
        assert net.receive() is None

    def test_burst_loss_circular_vs_infinite(self):
        """E6 in miniature: a burst larger than the ring loses messages
        on the circular buffer and none on the VM buffer."""
        lossy = self.make_net(CircularBuffer(4))
        clean = self.make_net(InfiniteVMBuffer())
        for net in (lossy, clean):
            pattern = TrafficPattern(burst_size=10, burst_gap=0, n_bursts=1)
            pattern.schedule_into(net)
            net.sim.run()
        assert lossy.messages_lost == 6
        assert clean.messages_lost == 0
        assert clean.backlog == 10

    def test_send_records_outbound(self):
        net = self.make_net(InfiniteVMBuffer())
        net.send("host-b", "out")
        assert len(net.sent) == 1

    def test_traffic_pattern_deterministic(self):
        a = TrafficPattern(3, 10, 2, seed=5)
        b = TrafficPattern(3, 10, 2, seed=5)
        assert [a._next() for _ in range(5)] == [b._next() for _ in range(5)]

    def test_bad_pattern(self):
        with pytest.raises(ValueError):
            TrafficPattern(0, 1, 1)


class TestInterruptDispatch:
    def make(self, config, dedicated: bool):
        sim = Simulator()
        tc = TrafficController(sim, config)
        ic = InterruptController(sim.clock)
        cls = DedicatedProcessDispatch if dedicated else InProcessDispatch
        return sim, tc, ic, cls(ic, tc, CostModel())

    def test_dedicated_handler_is_a_real_process(self, config):
        sim, tc, ic, dispatch = self.make(config, dedicated=True)
        handled = []

        def handler(payload):
            yield Charge(10)
            handled.append(payload)

        process = dispatch.register(3, handler)
        assert process.dedicated
        ic.raise_line(3, "evt")
        sim.run()
        assert handled == ["evt"]
        assert process.state is ProcessState.BLOCKED  # parked for more

    def test_dedicated_handler_may_block(self, config):
        """The whole point of the redesign: handlers are full processes
        and may use ordinary IPC."""
        sim, tc, ic, dispatch = self.make(config, dedicated=True)
        gate = tc.create_channel("gate")
        log = []

        def handler(payload):
            yield Charge(1)
            value = yield Block(gate)
            log.append((payload, value))

        dispatch.register(1, handler)
        ic.raise_line(1, "irq")
        sim.run()
        tc.send_wakeup(gate, "data")
        sim.run()
        assert log == [("irq", "data")]

    def test_in_process_handler_cannot_block(self, config):
        sim, tc, ic, dispatch = self.make(config, dedicated=False)
        gate = tc.create_channel("gate")

        def handler(payload):
            yield Block(gate)

        dispatch.register(1, handler)
        with pytest.raises(RuntimeError, match="attempted to block"):
            ic.raise_line(1, None)

    def test_in_process_steals_from_running_process(self, config):
        sim, tc, ic, dispatch = self.make(config, dedicated=False)

        def handler(payload):
            yield Charge(500)

        dispatch.register(1, handler)

        def victim_body(proc):
            yield Charge(10)
            ic.raise_line(1, None)  # interrupt arrives mid-run
            yield Charge(10)

        victim = Process("victim", body=victim_body)
        tc.add_process(victim)
        sim.run()
        # The victim paid for the handler's work.
        assert victim.cpu_cycles >= 500 + 20
        assert dispatch.stolen_cycles >= 500

    def test_dedicated_steals_only_the_wakeup(self, config):
        sim, tc, ic, dispatch = self.make(config, dedicated=True)

        def handler(payload):
            yield Charge(500)

        dispatch.register(1, handler)

        def victim_body(proc):
            yield Charge(10)
            ic.raise_line(1, None)
            yield Charge(10)

        victim = Process("victim", body=victim_body)
        tc.add_process(victim)
        sim.run()
        assert dispatch.stolen_cycles == CostModel().interrupt_to_wakeup
        assert victim.cpu_cycles <= 20 + CostModel().interrupt_to_wakeup

    def test_in_process_masks_during_handler(self, config):
        sim, tc, ic, dispatch = self.make(config, dedicated=False)

        def handler(payload):
            yield Charge(100)

        dispatch.register(1, handler)
        ic.raise_line(1, None)
        assert ic.masked_cycles >= 100
        assert not ic.masked  # unmasked after completion

    def test_pending_drain_after_unmask(self, io_env):
        sim, ic = io_env
        seen = []
        ic.set_interceptor(lambda i: seen.append(i.line))
        ic.mask()
        ic.raise_line(1)
        ic.raise_line(2)
        assert seen == []
        assert ic.pending_count == 2
        ic.unmask()
        assert seen == [1, 2]


class TestInfiniteBufferPageAccounting:
    def test_one_message_per_page_regression(self):
        """Regression: with ``messages_per_page == 1`` every put needs a
        fresh page.  The old modulo test (``len % 1 == 1``) never fired,
        so the buffer reported zero pages however much it grew."""
        grown = []
        buf = InfiniteVMBuffer(
            messages_per_page=1, page_hook=lambda: grown.append(1)
        )
        for i in range(5):
            buf.put(i)
        assert buf.pages_allocated == 5
        assert len(grown) == 5

    @given(st.integers(min_value=1, max_value=9), st.integers(min_value=0, max_value=60))
    def test_pages_match_ceiling_of_census(self, per_page, n):
        buf = InfiniteVMBuffer(messages_per_page=per_page)
        for i in range(n):
            buf.put(i)
        assert buf.pages_allocated == -(-n // per_page)


class TestBufferStatsInvariants:
    """Every message is accounted for: ``puts == gets + queued +
    overwrites`` for both designs, across the E6-style traffic sweep."""

    def drive(self, buffer, burst_size, drain):
        sim = Simulator()
        ic = InterruptController(sim.clock)
        net = NetworkAttachment(sim, ic, line=6, buffer=buffer)
        pattern = TrafficPattern(
            burst_size=burst_size, burst_gap=5, n_bursts=4
        )
        pattern.schedule_into(net)
        sim.run()
        for _ in range(drain):
            net.receive()
        return net

    @pytest.mark.parametrize("burst_size", [2, 8, 32])
    def test_invariant_circular(self, burst_size):
        buf = CircularBuffer(16)
        self.drive(buf, burst_size, drain=burst_size)
        s = buf.stats
        assert s.puts == s.gets + len(buf) + s.overwrites

    @pytest.mark.parametrize("burst_size", [2, 8, 64])
    def test_invariant_infinite_no_loss_under_laps(self, burst_size):
        """Bursts far beyond any ring capacity: the VM buffer loses
        nothing and the books still balance exactly."""
        buf = InfiniteVMBuffer(messages_per_page=4)
        net = self.drive(buf, burst_size, drain=burst_size)
        s = buf.stats
        assert buf.lost == 0
        assert s.overwrites == 0
        assert s.puts == s.gets + len(buf)
        while net.receive() is not None:
            pass
        assert buf.stats.gets == buf.stats.puts
        assert len(buf) == 0
