"""Metric-name lint: every name a booted system registers must match
the registry's grammar and be listed in the DESIGN.md "Metric name
table" — and the table must not list names nothing registers."""

import pathlib
import re

import pytest

from repro import kernel_config, legacy_config
from repro.config import SupervisorKind
from repro.faults.harness import harness_config
from repro.faults.plan import FaultPlan, FaultSpec
from repro.obs import NAME_RE
from repro.system import MulticsSystem
from repro.workloads import WorkloadDriver
from repro.workloads.shards import MergeMetrics

DESIGN = pathlib.Path(__file__).resolve().parent.parent / "DESIGN.md"

# One row per prefix: | `am.` | `cams`, `entries`, ... |
_ROW = re.compile(r"^\| `([a-z0-9_.]+\.)` \| (.+) \|$", re.MULTILINE)


def documented_names() -> set[str]:
    text = DESIGN.read_text()
    names = set()
    for prefix, cell in _ROW.findall(text):
        for leaf in re.findall(r"`([a-z0-9_.]+)`", cell):
            names.add(prefix + leaf)
    return names


def registered_names() -> set[str]:
    names = set()
    for config in (
        kernel_config(),
        kernel_config(timeline={}),  # timeline.* / health.* register
        legacy_config(),
        harness_config(
            fault_plan=FaultPlan(
                [FaultSpec("memory.transfer", "transfer_error", at_ops=(2,))],
                seed=3,
            )
        ),
    ):
        system = MulticsSystem(config).boot()
        system.register_user("Alice", "Crypto", "pw")
        session = system.login("Alice", "Crypto", "pw")
        session.make_cpu()  # cpu.* names register per-CPU
        cx = system.cpu_complex(n_cpus=2)  # smp.* names register per-complex
        system.chaos_engine(  # chaos.* names register per-engine
            {
                "name": "lint",
                "controllers": [
                    {
                        "type": "timed",
                        "events": [
                            {"at": 0, "site": "link.uplink", "kind": "drop"}
                        ],
                    }
                ],
            },
            complex_=cx,
        )
        if config.supervisor is not SupervisorKind.LEGACY:
            WorkloadDriver(system)  # workload.* names register per-driver
            # specialize.* names register when a specialized kernel and
            # an orchestrator are built over the substrate.
            from repro.kernel.orchestrator import KernelOrchestrator
            from repro.kernel.specialize import GateProfile

            orchestrator = KernelOrchestrator(system)
            orchestrator.add_tenant(
                "lint", GateProfile("lint", gates={"hcs_$get_root"})
            )
        names.update(system.metrics.names())
    # shard.* names live on the sharded merge layer's own registry, not
    # on any single booted system.
    names.update(MergeMetrics().registry.names())
    return names


@pytest.fixture(scope="module")
def live_names():
    return registered_names()


def test_table_parses_to_a_plausible_set():
    names = documented_names()
    assert len(names) > 50
    assert "gate.calls" in names
    assert "meter.coverage" in names


def test_every_registered_name_matches_grammar(live_names):
    bad = [n for n in live_names if not NAME_RE.match(n)]
    assert bad == []


def test_every_registered_name_is_documented(live_names):
    undocumented = sorted(live_names - documented_names())
    assert undocumented == [], (
        f"add to the DESIGN.md metric name table: {undocumented}"
    )


def test_no_stale_documented_names(live_names):
    stale = sorted(documented_names() - live_names)
    assert stale == [], (
        f"DESIGN.md metric name table lists unregistered names: {stale}"
    )
