"""Tests for shard-parallel workload execution (repro.workloads.sharded
and the shards/ plumbing): the stable UID partition, the picklable wire
format, the deterministic merge folds, and the orchestrator end to end
at small scale — serial, 1-shard-equivalence, and one real spawn-pool
run.
"""

import json
import pickle

import pytest

from repro import MulticsSystem, kernel_config
from repro.obs import validate_snapshot
from repro.workloads import (
    ShardSpec,
    WorkloadDriver,
    WorkloadReport,
    assign_shard,
    generate_population,
    partition_population,
    run_sharded,
)
from repro.workloads.shards import (
    MergeMetrics,
    ShardResult,
    materialize_population,
    merge_audits,
    merge_reports,
    merge_snapshots,
    merge_timelines,
    run_shard,
)

N_SMOKE = 20
SEED = 1975


class TestPartition:
    def test_assignment_is_stable_and_in_range(self):
        for n_shards in (1, 2, 3, 8):
            for i in range(64):
                person = f"U{i:05d}"
                shard = assign_shard(person, n_shards)
                assert 0 <= shard < n_shards
                assert shard == assign_shard(person, n_shards)

    def test_one_shard_takes_everyone(self):
        assert all(
            assign_shard(f"U{i:05d}", 1) == 0 for i in range(32)
        )

    def test_bad_shard_count_rejected(self):
        with pytest.raises(ValueError):
            assign_shard("U00000", 0)

    def test_partition_covers_population_exactly_once(self):
        population = generate_population(100, seed=SEED)
        slices = partition_population(population, 4)
        assert len(slices) == 4
        rejoined = [spec for part in slices for spec in part]
        assert sorted(rejoined, key=lambda s: s.person) == sorted(
            population, key=lambda s: s.person
        )
        # UID-hash balance is rough, but no shard should be empty or
        # hold everything at this size.
        sizes = [len(part) for part in slices]
        assert all(0 < size < 100 for size in sizes)

    def test_partition_is_independent_of_input_order(self):
        population = generate_population(60, seed=SEED)
        forward = partition_population(population, 3)
        backward = partition_population(list(reversed(population)), 3)
        for a, b in zip(forward, backward):
            assert sorted(a, key=lambda s: s.person) == sorted(
                b, key=lambda s: s.person
            )


class TestShardSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            ShardSpec(shard_id=0, n_shards=0, seed=1, n_users=10)
        with pytest.raises(ValueError):
            ShardSpec(shard_id=2, n_shards=2, seed=1, n_users=10)
        with pytest.raises(ValueError):
            ShardSpec(shard_id=0, n_shards=1, seed=1, n_users=-1)

    def test_spec_and_result_pickle(self):
        spec = ShardSpec(shard_id=1, n_shards=2, seed=SEED, n_users=100,
                         config=kernel_config())
        clone = pickle.loads(pickle.dumps(spec))
        assert clone == spec
        result = ShardResult(
            shard_id=1,
            report=WorkloadReport(users=3, admitted=3),
            snapshot={"counters": {"a.b": 1}},
            audit={"seen": 2, "dropped": 0, "denials": 1},
        )
        back = pickle.loads(pickle.dumps(result))
        assert back.shard_id == 1
        assert back.report.admitted == 3
        assert back.audit["denials"] == 1

    def test_materialize_slices_union_to_the_population(self):
        population = generate_population(80, seed=SEED)
        specs = [
            ShardSpec(shard_id=k, n_shards=3, seed=SEED, n_users=80)
            for k in range(3)
        ]
        rejoined = [
            user for spec in specs for user in materialize_population(spec)
        ]
        assert sorted(rejoined, key=lambda s: s.person) == sorted(
            population, key=lambda s: s.person
        )

    def test_materialize_one_shard_is_the_full_population(self):
        spec = ShardSpec(shard_id=0, n_shards=1, seed=SEED, n_users=40)
        assert materialize_population(spec) == generate_population(
            40, seed=SEED
        )

    def test_explicit_users_bypass_regeneration_and_filter(self):
        users = tuple(generate_population(6, seed=3))
        spec = ShardSpec(shard_id=0, n_shards=4, seed=SEED, n_users=6,
                         users=users)
        assert materialize_population(spec) == list(users)


def _result(shard_id, *, counters=None, gauges=None, histograms=None,
            clock=0, report=None, audit=None):
    return ShardResult(
        shard_id=shard_id,
        report=report or WorkloadReport(),
        snapshot={
            "schema": "repro.obs/v1", "schema_version": 1, "clock": clock,
            "counters": counters or {}, "gauges": gauges or {},
            "histograms": histograms or {},
        },
        audit=audit or {"seen": 0, "dropped": 0, "denials": 0},
    )


class TestMerge:
    def test_reports_fold_in_shard_id_order(self):
        a = WorkloadReport(users=2, admitted=2, jobs_completed=2,
                           start_clock=5, end_clock=50,
                           latencies=[1, 2])
        b = WorkloadReport(users=3, admitted=2, login_failures=1,
                           jobs_completed=1, jobs_failed=1,
                           start_clock=3, end_clock=80,
                           latencies=[9])
        # Completion order reversed: shard_id order must win.
        merged = merge_reports([
            _result(1, report=b), _result(0, report=a),
        ])
        assert merged.users == 5
        assert merged.admitted == 4
        assert merged.login_failures == 1
        assert merged.jobs_completed == 3
        assert merged.jobs_failed == 1
        assert merged.start_clock == 3
        assert merged.end_clock == 80
        assert merged.latencies == [1, 2, 9]
        assert merged.wall_seconds == 0.0  # stamped by the orchestrator

    def test_snapshots_sum_counters_and_gauges(self):
        merged = merge_snapshots([
            _result(0, counters={"x.a": 2, "x.b": 1}, gauges={"g.l": 3},
                    clock=10),
            _result(1, counters={"x.a": 5}, gauges={"g.l": 4, "g.m": 1},
                    clock=40),
        ])
        assert merged["counters"] == {"x.a": 7, "x.b": 1}
        assert merged["gauges"] == {"g.l": 7, "g.m": 1}
        assert merged["clock"] == 40
        assert validate_snapshot(merged) == []

    def test_histograms_fold_and_mean_recomputes(self):
        h0 = {"count": 2, "sum": 10, "min": 2, "max": 8, "mean": 5.0}
        h1 = {"count": 3, "sum": 30, "min": 1, "max": 20, "mean": 10.0}
        empty = {"count": 0, "sum": 0, "min": None, "max": None,
                 "mean": 0.0}
        merged = merge_snapshots([
            _result(0, histograms={"w.lat": h0, "w.idle": empty}),
            _result(1, histograms={"w.lat": h1}),
        ])
        assert merged["histograms"]["w.lat"] == {
            "count": 5, "sum": 40, "min": 1, "max": 20, "mean": 8.0,
        }
        assert merged["histograms"]["w.idle"] == empty

    def test_merge_metrics_inject_shard_names(self):
        metrics = MergeMetrics()
        metrics.shards = 2
        metrics.users = 100
        merged = merge_snapshots(
            [_result(0), _result(1)], metrics
        )
        assert merged["gauges"]["shard.count"] == 2
        assert merged["counters"]["shard.users"] == 100
        assert merged["counters"]["shard.merge.folds"] == 2
        assert merged["counters"]["shard.spawn_failures"] == 0
        assert validate_snapshot(merged) == []

    def test_audits_sum_with_per_shard_rows(self):
        merged = merge_audits([
            _result(1, audit={"seen": 10, "dropped": 1, "denials": 4}),
            _result(0, audit={"seen": 7, "dropped": 0, "denials": 2}),
        ])
        assert merged["seen"] == 17
        assert merged["dropped"] == 1
        assert merged["denials"] == 6
        assert [row["shard_id"] for row in merged["per_shard"]] == [0, 1]


class TestRunSharded:
    def test_mode_validation(self):
        with pytest.raises(ValueError, match="mode"):
            run_sharded(4, 1, SEED, mode="threads")
        with pytest.raises(ValueError, match="shard"):
            run_sharded(4, 0, SEED)

    def test_serial_small_end_to_end(self):
        sharded = run_sharded(N_SMOKE, 2, SEED, mode="serial")
        assert sharded.mode == "serial"
        assert sharded.n_shards == 2
        report = sharded.report
        assert report.users == N_SMOKE
        assert report.admitted == N_SMOKE
        assert report.jobs_completed == N_SMOKE
        assert report.jobs_failed == 0
        assert len(report.latencies) == N_SMOKE
        assert validate_snapshot(sharded.snapshot) == []
        assert sharded.audit["seen"] > 0
        assert len(sharded.audit["per_shard"]) == 2
        assert sharded.wall_seconds > 0
        # workload.* counters folded across both shard systems.
        assert sharded.snapshot["counters"]["workload.logins"] == N_SMOKE

    def test_same_seed_same_bytes(self):
        a = run_sharded(N_SMOKE, 2, SEED, mode="serial")
        b = run_sharded(N_SMOKE, 2, SEED, mode="serial")
        assert a.canonical_json() == b.canonical_json()
        c = run_sharded(N_SMOKE, 2, SEED + 1, mode="serial")
        assert a.canonical_json() != c.canonical_json()

    def test_wall_clock_stays_out_of_the_canonical_doc(self):
        sharded = run_sharded(N_SMOKE, 2, SEED, mode="serial")
        canonical = json.dumps(sharded.canonical_dict())
        assert "wall" not in canonical
        assert "users_per_sec" not in canonical
        full = sharded.to_dict()
        assert "wall_seconds" in full
        assert "shard_walls" in full

    def test_one_shard_equals_the_plain_driver(self):
        system = MulticsSystem(kernel_config()).boot()
        direct = WorkloadDriver(system, n_cpus=2).run(
            generate_population(N_SMOKE, seed=SEED)
        )
        direct_snapshot = system.metrics.snapshot()
        sharded = run_sharded(N_SMOKE, 1, SEED, n_cpus=2)
        assert sharded.mode == "serial"  # auto: 1 shard stays in-process
        merged = sharded.report
        assert merged.admitted == direct.admitted
        assert merged.start_clock == direct.start_clock
        assert merged.end_clock == direct.end_clock
        assert merged.latencies == direct.latencies
        assert sharded.shards[0].snapshot == direct_snapshot

    def test_run_shard_is_a_pure_function_of_its_spec(self):
        spec = ShardSpec(shard_id=0, n_shards=2, seed=SEED,
                         n_users=N_SMOKE, config=kernel_config(),
                         n_cpus=2)
        a = run_shard(spec)
        b = run_shard(spec)
        assert a.snapshot == b.snapshot
        assert a.report.latencies == b.report.latencies
        assert a.audit == b.audit

    def test_explicit_population_pre_partitions(self):
        population = generate_population(N_SMOKE, seed=SEED)
        sharded = run_sharded(0, 2, SEED, mode="serial",
                              population=population)
        assert sharded.report.users == N_SMOKE
        assert sharded.report.admitted == N_SMOKE

    def test_unimportable_main_falls_back_instead_of_hanging(self, monkeypatch):
        """A stdin-sourced __main__ (python - <<EOF, process
        substitution) cannot be replayed by spawn: Pool would respawn
        crashing workers forever.  The guard must refuse the pool up
        front so auto mode degrades to serial — and a forced
        ``processes`` run must raise rather than hang."""
        import sys

        monkeypatch.setattr(
            sys.modules["__main__"], "__file__", "/tmp/<stdin>",
            raising=False,
        )
        sharded = run_sharded(N_SMOKE, 2, SEED)
        assert sharded.mode == "serial"
        assert sharded.snapshot["counters"]["shard.spawn_failures"] == 1
        with pytest.raises(RuntimeError, match="re-importable"):
            run_sharded(N_SMOKE, 2, SEED, mode="processes")

    def test_process_pool_matches_serial_bytes(self):
        """One real spawn-pool run: scheduling must not leak into the
        merged bytes, and the pool must actually engage (or fall back
        gracefully where the sandbox forbids it — both are recorded)."""
        pooled = run_sharded(N_SMOKE, 2, SEED)
        serial = run_sharded(N_SMOKE, 2, SEED, mode="serial")
        assert pooled.mode in ("processes", "serial")
        if pooled.mode == "serial":
            # The fallback path must have been counted.
            spawn_failures = pooled.snapshot["counters"][
                "shard.spawn_failures"
            ]
            assert spawn_failures == 1
        assert pooled.canonical_json() == serial.canonical_json()


class TestMergeEdgeCases:
    """Degenerate shard results the folds must absorb, not trip over."""

    def test_empty_shard_result_is_the_identity(self):
        # A shard whose slice got no users: default report, empty
        # tables, empty audit.  Folding it in changes nothing.
        busy = _result(0, counters={"x.a": 3}, gauges={"g.l": 2},
                       clock=40,
                       report=WorkloadReport(users=2, admitted=2,
                                             start_clock=1, end_clock=40),
                       audit={"seen": 5, "dropped": 0, "denials": 1})
        idle = _result(1)
        merged = merge_snapshots([busy, idle])
        assert merged["counters"] == {"x.a": 3}
        assert merged["gauges"] == {"g.l": 2}
        assert merged["clock"] == 40
        report = merge_reports([busy, idle])
        assert (report.users, report.admitted) == (2, 2)
        audit = merge_audits([busy, idle])
        assert (audit["seen"], audit["denials"]) == (5, 1)
        assert len(audit["per_shard"]) == 2

    def test_disjoint_metric_names_union(self):
        # Shards need not register the same instruments (a chaos
        # controller only wired on shard 0, say): the fold is a union,
        # with absent names contributing nothing.
        merged = merge_snapshots([
            _result(0, counters={"only.left": 2}, gauges={"l.g": 1}),
            _result(1, counters={"only.right": 5}, gauges={"r.g": 4}),
        ])
        assert merged["counters"] == {"only.left": 2, "only.right": 5}
        assert merged["gauges"] == {"l.g": 1, "r.g": 4}
        assert validate_snapshot(merged) == []

    def test_zero_sample_histogram_folds_to_empty(self):
        empty = {"count": 0, "sum": 0, "min": None, "max": None,
                 "mean": 0.0}
        merged = merge_snapshots([
            _result(0, histograms={"w.lat": dict(empty)}),
            _result(1, histograms={"w.lat": dict(empty)}),
        ])
        assert merged["histograms"]["w.lat"] == empty

    def test_empty_audit_trails_sum_to_zero(self):
        merged = merge_audits([_result(0), _result(1)])
        assert (merged["seen"], merged["dropped"], merged["denials"]) \
            == (0, 0, 0)
        assert [row["shard_id"] for row in merged["per_shard"]] == [0, 1]

    def test_timeline_merge_skips_timelineless_shards(self):
        doc = {
            "schema": "repro.timeline/v1", "schema_version": 1,
            "t0": 0, "interval": 100, "capacity": 8, "dropped": 0,
            "samples": [{"index": 1, "t": 100, "dt": 100,
                         "counters": {"x.a": 2}, "gauges": {},
                         "histograms": {}}],
            "breaches": [],
        }
        with_tl = _result(0)
        with_tl.timeline = doc
        without = _result(1)
        merged = merge_timelines([without, with_tl])
        assert merged["n_shards"] == 1
        assert merged["samples"][0]["counters"] == {"x.a": 2}

    def test_timeline_zero_sample_histogram_row_folds(self):
        base = {
            "schema": "repro.timeline/v1", "schema_version": 1,
            "t0": 0, "interval": 100, "capacity": 8, "dropped": 0,
            "breaches": [],
        }
        a = _result(0)
        a.timeline = dict(base, samples=[
            {"index": 1, "t": 100, "dt": 100, "counters": {},
             "gauges": {},
             "histograms": {"h.x": {"count": 0, "sum": 0,
                                    "p50": None, "p95": None}}},
        ])
        b = _result(1)
        b.timeline = dict(base, samples=[
            {"index": 1, "t": 120, "dt": 120, "counters": {},
             "gauges": {},
             "histograms": {"h.x": {"count": 2, "sum": 9,
                                    "p50": 4, "p95": 5}}},
        ])
        merged = merge_timelines([a, b])
        [row] = merged["samples"]
        assert row["histograms"]["h.x"] == \
            {"count": 2, "sum": 9, "p50": 4, "p95": 5}
