"""Tests for the physical memory hierarchy."""

import pytest

from repro.config import SystemConfig
from repro.hw.memory import MemoryHierarchy, MemoryLevel, OutOfFrames


@pytest.fixture
def level():
    return MemoryLevel("core", 4, 1, page_size=8)


class TestMemoryLevel:
    def test_initially_all_free(self, level):
        assert level.free_count == 4
        assert level.used_count == 0

    def test_allocate_and_free(self, level):
        idx = level.allocate()
        assert level.is_allocated(idx)
        assert level.used_count == 1
        level.free(idx)
        assert not level.is_allocated(idx)
        assert level.free_count == 4

    def test_exhaustion(self, level):
        for _ in range(4):
            level.allocate()
        with pytest.raises(OutOfFrames):
            level.allocate()

    def test_double_free_rejected(self, level):
        idx = level.allocate()
        level.free(idx)
        with pytest.raises(ValueError):
            level.free(idx)

    def test_read_write_word(self, level):
        idx = level.allocate()
        level.write(idx, 3, 99)
        assert level.read(idx, 3) == 99

    def test_access_unallocated_rejected(self, level):
        with pytest.raises(ValueError):
            level.read(0, 0)
        with pytest.raises(ValueError):
            level.write(0, 0, 1)

    def test_offset_bounds(self, level):
        idx = level.allocate()
        with pytest.raises(ValueError):
            level.read(idx, 8)
        with pytest.raises(ValueError):
            level.write(idx, -1, 0)

    def test_page_read_write(self, level):
        idx = level.allocate()
        data = list(range(8))
        level.write_page(idx, data)
        assert level.read_page(idx) == data

    def test_page_write_wrong_length(self, level):
        idx = level.allocate()
        with pytest.raises(ValueError):
            level.write_page(idx, [1, 2, 3])

    def test_frames_cleared_on_free(self, level):
        idx = level.allocate()
        level.write(idx, 0, 777)
        level.free(idx)
        # Next allocation of the same frame sees zeros.
        idx2 = level.allocate()
        while idx2 != idx:
            idx2 = level.allocate()
        assert level.read(idx2, 0) == 0

    def test_residue_when_clearing_disabled(self):
        """The classic residue flaw: with clearing off, freed data is
        readable by the next owner (exploited by experiment E11)."""
        dirty = MemoryLevel("core", 1, 1, page_size=8, clear_on_free=False)
        idx = dirty.allocate()
        dirty.write(idx, 0, 777)
        dirty.free(idx)
        idx2 = dirty.allocate()
        assert dirty.read(idx2, 0) == 777

    def test_counters(self, level):
        a = level.allocate()
        level.free(a)
        level.allocate()
        assert level.allocations == 2
        assert level.frees == 1


class TestMemoryHierarchy:
    @pytest.fixture
    def hierarchy(self, config: SystemConfig):
        return MemoryHierarchy(config)

    def test_levels_sized_from_config(self, hierarchy, config):
        assert hierarchy.core.n_frames == config.core_frames
        assert hierarchy.bulk.n_frames == config.bulk_frames
        assert hierarchy.disk.n_frames == config.disk_frames

    def test_level_lookup(self, hierarchy):
        assert hierarchy.level("core") is hierarchy.core
        assert hierarchy.level("bulk") is hierarchy.bulk
        assert hierarchy.level("disk") is hierarchy.disk
        with pytest.raises(ValueError):
            hierarchy.level("drum")

    def test_transfer_moves_data_and_frees_source(self, hierarchy, config):
        src = hierarchy.core.allocate()
        data = list(range(config.page_size))
        hierarchy.core.write_page(src, data)
        dst = hierarchy.transfer(hierarchy.core, src, hierarchy.bulk)
        assert hierarchy.bulk.read_page(dst) == data
        assert not hierarchy.core.is_allocated(src)

    def test_transfer_counts(self, hierarchy):
        src = hierarchy.core.allocate()
        hierarchy.transfer(hierarchy.core, src, hierarchy.disk)
        assert hierarchy.transfer_counts[("core", "disk")] == 1

    def test_transfer_cost_is_slower_endpoint(self, hierarchy):
        assert (
            hierarchy.transfer_cost(hierarchy.core, hierarchy.disk)
            == hierarchy.disk.transfer_cost
        )
        assert (
            hierarchy.transfer_cost(hierarchy.core, hierarchy.bulk)
            == hierarchy.bulk.transfer_cost
        )

    def test_transfer_into_full_level_raises(self, config):
        config.bulk_frames = config.core_frames  # tiny bulk
        hierarchy = MemoryHierarchy(config)
        for _ in range(hierarchy.bulk.n_frames):
            hierarchy.bulk.allocate()
        src = hierarchy.core.allocate()
        with pytest.raises(OutOfFrames):
            hierarchy.transfer(hierarchy.core, src, hierarchy.bulk)
