"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.config import (
    BufferKind,
    InitKind,
    InterruptKind,
    PageControlKind,
    RingMode,
    SupervisorKind,
    SystemConfig,
)


@pytest.fixture
def config() -> SystemConfig:
    """A small but realistic configuration for unit tests."""
    cfg = SystemConfig(
        page_size=16,
        core_frames=8,
        bulk_frames=32,
        disk_frames=256,
        n_processors=1,
        n_virtual_processors=4,
        quantum=500,
    )
    cfg.validate()
    return cfg


@pytest.fixture
def legacy_config(config: SystemConfig) -> SystemConfig:
    """The 'before' system: 645 rings, everything in the supervisor."""
    config.ring_mode = RingMode.SOFTWARE_645
    config.supervisor = SupervisorKind.LEGACY
    config.page_control = PageControlKind.SEQUENTIAL
    config.buffers = BufferKind.CIRCULAR
    config.init = InitKind.BOOTSTRAP
    config.interrupts = InterruptKind.IN_PROCESS
    return config


def _boot(config):
    from repro.system import MulticsSystem

    system = MulticsSystem(config).boot()
    system.register_user("Alice", "Crypto", "alice-pw")
    system.register_user("Bob", "Crypto", "bob-pw")
    system.register_user("Eve", "Spies", "eve-pw")
    return system


@pytest.fixture
def kernel_system():
    """A booted security-kernel system with three users registered."""
    from repro import kernel_config

    return _boot(kernel_config())


@pytest.fixture
def legacy_system():
    """A booted legacy system (645 rings, in-kernel everything)."""
    from repro import legacy_config

    return _boot(legacy_config())


@pytest.fixture(params=["kernel", "legacy"])
def any_system(request):
    """Parametrized over both supervisors: same workload, both systems."""
    from repro import kernel_config, legacy_config

    config = kernel_config() if request.param == "kernel" else legacy_config()
    return _boot(config)
