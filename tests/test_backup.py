"""Tests for the backup daemon (unprivileged hierarchy dump/reload)."""

import pytest

from repro.user.backup import BackupDaemon


@pytest.fixture
def populated(any_system):
    alice = any_system.login("Alice", "Crypto", "alice-pw")
    alice.create_dir("proj")
    seg = alice.create_segment("proj>data", n_pages=1)
    alice.write_words(seg, [1, 2, 3])
    alice.set_acl("proj>data", "Bob.Crypto", "r")
    alice.create_dir("proj>docs")
    alice.create_segment("proj>docs>readme", n_pages=1)
    # Grant the backup identity read over the subtree so the daemon can
    # see it, plus traversal of the enclosing project/home directories.
    for path in ("proj", "proj>data", "proj>docs", "proj>docs>readme"):
        alice.set_acl(path, "*.SysDaemon", "r")
    alice.set_acl(">udd>Crypto", "*.SysDaemon", "r")
    alice.set_acl(">udd>Crypto>Alice", "*.SysDaemon", "r")
    return any_system, alice


def daemon_for(system):
    system.register_user("Backup2", "SysDaemon", "backup2-pw")
    session = system.login("Backup2", "SysDaemon", "backup2-pw")
    return BackupDaemon(session)


class TestDump:
    def test_dump_captures_tree(self, populated):
        system, alice = populated
        daemon = daemon_for(system)
        volume = daemon.dump(f"{alice.home_path}>proj")
        kinds = [(r.kind, r.path.split(">")[-1]) for r in volume.records]
        assert ("directory", "proj") in kinds
        assert ("segment", "data") in kinds
        assert ("segment", "readme") in kinds

    def test_dump_respects_acls(self, populated):
        """A directory that denies the daemon is skipped, not forced."""
        system, alice = populated
        alice.create_dir("proj>private")
        alice.set_acl("proj>private", "*.SysDaemon", "n")
        daemon = daemon_for(system)
        volume = daemon.dump(f"{alice.home_path}>proj")
        assert any("private" in path for path in volume.skipped)
        assert not any("private" in r.path for r in volume.records)

    def test_dump_captures_content_and_acl(self, populated):
        system, alice = populated
        daemon = daemon_for(system)
        volume = daemon.dump(f"{alice.home_path}>proj")
        data = next(r for r in volume.records if r.path.endswith(">data"))
        assert data.words[:3] == [1, 2, 3]
        assert ("Bob.Crypto.*", "r") in data.acl


class TestReload:
    def test_roundtrip(self, populated):
        system, alice = populated
        daemon = daemon_for(system)
        volume = daemon.dump(f"{alice.home_path}>proj")
        # Restore under the daemon's own home.
        restored = daemon.reload(volume, f"{daemon.session.home_path}>restore")
        # The dump root maps onto an existing dir; create it first.
        assert restored >= 0
        # Do it properly: create the target then reload.
        daemon.session.create_dir("restore2")
        count = daemon.reload(volume, f"{daemon.session.home_path}>restore2")
        assert count >= 3
        seg = daemon.session.initiate(
            f"{daemon.session.home_path}>restore2>data"
        )
        assert daemon.session.read_words(seg, 3) == [1, 2, 3]

    def test_empty_volume(self, populated):
        system, alice = populated
        daemon = daemon_for(system)
        from repro.user.backup import BackupVolume

        assert daemon.reload(BackupVolume(dumped_at=0), ">anywhere") == 0


class TestTapeSpooling:
    def test_spool_on_legacy(self, legacy_system):
        alice = legacy_system.login("Alice", "Crypto", "alice-pw")
        seg = alice.create_segment("notes", n_pages=1)
        alice.write_words(seg, [9, 9])
        alice.set_acl("notes", "*.SysDaemon", "r")
        for path in ():
            pass
        # Home/project dirs must be daemon-readable; the project dir ACL
        # already grants *.Crypto; add the daemon explicitly.
        alice.set_acl(f">udd>Crypto>Alice", "*.SysDaemon", "r")
        daemon = daemon_for(legacy_system)
        volume = daemon.dump(alice.home_path)
        written = daemon.spool_to_tape(volume)
        assert written == len(volume)
        tape = legacy_system.services.devices["tape1"]
        assert len(tape.records) == written
