"""E12 — the MITRE compartment model at the kernel's bottom layer:
"mechanisms to provide absolute compartmentalization of users and
stored information be implemented at the bottom layer ... and
mechanisms to allow controlled sharing within the compartments be
implemented at the next layer."

Measured: the full 4x4 level access matrix through live sessions (the
lattice decides), plus controlled sharing *within* a compartment via
ACLs (the discretionary layer decides).
"""

from repro import MulticsSystem, SecurityLabel, kernel_config
from repro.errors import AccessViolation, KernelDenial


def build_matrix():
    """For each (subject level, object level): can read / can write?"""
    system = MulticsSystem(kernel_config()).boot()
    system.register_user("Builder", "Intel", "pw")
    builder = system.login("Builder", "Intel", "pw")
    paths = {}
    for level in range(4):
        builder.create_segment(f"obj{level}", label=SecurityLabel(level))
        builder.set_acl(f"obj{level}", "*.Intel", "rw")
        paths[level] = f"{builder.home_path}>obj{level}"

    matrix = {}
    for s_level in range(4):
        person = f"Sub{s_level}"
        system.register_user(person, "Intel", "pw",
                             clearance=SecurityLabel(s_level))
        subject = system.login(person, "Intel", "pw")
        for o_level in range(4):
            segno = subject.initiate(paths[o_level])
            try:
                subject.read_words(segno, 1)
                can_read = True
            except AccessViolation:
                can_read = False
            try:
                subject.write_words(segno, [1])
                can_write = True
            except AccessViolation:
                can_write = False
            matrix[(s_level, o_level)] = (can_read, can_write)
    return system, matrix


def test_e12_compartment_matrix(benchmark, report):
    system, matrix = benchmark(build_matrix)

    for (s, o), (can_read, can_write) in matrix.items():
        assert can_read == (s >= o), (s, o)     # simple security
        assert can_write == (s <= o), (s, o)    # *-property

    # Controlled sharing within a compartment: ACLs still bite.
    system.register_user("Peer", "Intel", "pw",
                         clearance=SecurityLabel(0))
    builder = system.login("Builder", "Intel", "pw")
    builder.create_segment("club")
    builder.set_acl("club", "*.*.*", "n")
    peer = system.login("Peer", "Intel", "pw")
    try:
        peer.initiate(f"{builder.home_path}>club")
        acl_blocked = False
    except KernelDenial:
        acl_blocked = True
    assert acl_blocked

    lines = [
        "E12: compartment lattice (paper: absolute compartmentalization at",
        "     the bottom layer; controlled sharing within compartments)",
        "  subject\\object   U       C       S       TS    (r=read w=write)",
    ]
    names = ["U ", "C ", "S ", "TS"]
    for s in range(4):
        cells = []
        for o in range(4):
            can_read, can_write = matrix[(s, o)]
            cells.append(("r" if can_read else "-") + ("w" if can_write else "-"))
        lines.append(f"  {names[s]:>14} " + "     ".join(f"{c:>3}" for c in cells))
    lines.append("  ACL 'n' entry still denies a same-level peer: yes")
    report("E12", lines)
