"""E14 — the unified process-creation / subsystem-entry mechanism: "the
large collection of privileged, protected code used to authenticate and
log in users would become non-privileged code."

Measured: login-related gates and privileged code statements under each
supervisor, and a live login/logout workload through both paths.
"""

from repro import MulticsSystem, kernel_config, legacy_config
from repro.kernel import login_kernel, proc_gates
from repro.kernel.kernel import build_kernel
from repro.kernel.legacy import build_legacy
from repro.kernel.metrics import count_statements, gate_census


def login_workload(system, n_users: int = 5):
    sessions = []
    for i in range(n_users):
        system.register_user(f"User{i}", "Proj", f"pw{i}")
        sessions.append(system.login(f"User{i}", "Proj", f"pw{i}"))
    for session in sessions:
        session.logout()
    return len(sessions)


def test_e14_login_becomes_unprivileged(benchmark, report):
    legacy_census = gate_census(build_legacy())
    kernel_census = gate_census(build_kernel())
    legacy_login_gates = legacy_census.by_removal.get("login", 0)
    assert legacy_login_gates >= 5
    assert "login" not in kernel_census.by_removal

    # Privileged login code: the whole answering service vs the single
    # proc_create handler (+ the password hash it shares).
    legacy_privileged = count_statements(login_kernel)
    kernel_privileged = count_statements(
        proc_gates.h_proc_create
    ) + count_statements(proc_gates.hash_password)
    assert kernel_privileged * 3 < legacy_privileged

    # Both paths work end to end.
    legacy_system = MulticsSystem(legacy_config()).boot()
    assert login_workload(legacy_system) == 5
    kernel_system = MulticsSystem(kernel_config()).boot()
    completed = benchmark(login_workload, kernel_system)
    assert completed == 5
    # The kernel system's dialogue ran in the user ring.
    assert kernel_system.listener is not None
    assert kernel_system.listener.transcript

    report("E14", [
        "E14: login via the unified mechanism (paper: privileged login code",
        "     becomes non-privileged)",
        "                                        legacy      kernel",
        f"  user-available login gates         {legacy_login_gates:>10} {0:>11}",
        f"  privileged login code (stmts)      {legacy_privileged:>10} {kernel_privileged:>11}",
        "  session dialogue / table / greeting   ring 0   user ring",
        "  privileged steps per login          whole flow   1 gate call",
    ])
