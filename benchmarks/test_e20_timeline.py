"""E20 — the time-series telemetry plane: interval timeline sampler,
SLO health monitor, and the cross-shard timeline merge.

The observability contract extends to the time axis: turning the
sampler on changes **nothing** the simulation computes (the simulated
clock and every report number are identical on or off — sampling reads
instruments, never charges cycles), and everything it records is a
simulated quantity, so timelines are byte-reproducible per shard and
merged.  Four legs:

* **overhead** — the same workload with the timeline off and on:
  identical end clock, identical report, bounded wall-clock overhead;
* **chaos** — a 10k-user run under a timed storm (CPU lost, then
  restored): the HealthMonitor's breach log is confined to the storm
  window, every post-recovery sample is breach-free, and the timeline
  itself shows the throughput (busy-cycle density) collapse and
  recovery aligned with the scenario storyboard;
* **determinism** — same seed → byte-identical timeline documents;
  same seed + shard count → byte-identical merged canonical JSON
  across repeat sharded runs;
* **1-shard identity** — a 1-shard serial run's timeline equals the
  in-process driver's document byte for byte.

The audit-completeness SLO runs the trail at level ``deny``: the
paper's guarantee is that every *deny* appears in the trail, so the
rule asserts no accepted deny record was ever evicted
(``audit.dropped`` ceiling 0) — granted records are filtered before
the ring and cannot displace denials.
"""

import json
import os
import pathlib
import time

from repro import MulticsSystem, kernel_config
from repro.workloads import WorkloadDriver, generate_population, run_sharded

SEED = 1975
N_CPUS = 2
INTERVAL = 10_000
USERS_SMALL = 400
USERS_CHAOS = 10_000
USERS_CHAOS_QUICK = 1_000

#: Same memory hierarchy as E18/E19, so this bench's workload numbers
#: are comparable with the engine benches.
FRAMES = dict(page_size=16, core_frames=16384, bulk_frames=32768,
              disk_frames=65536)

#: The SLO rule set: capacity floor (breaches exactly while a CPU is
#: out), job-failure and audit-deny-completeness ceilings (never
#: breach — faults cost time, not data).
RULES = [
    {"name": "capacity", "kind": "gauge_floor",
     "metric": "smp.cpus", "min": N_CPUS},
    {"name": "no_job_failures", "kind": "rate_ceiling",
     "metric": "smp.jobs_failed", "max": 0},
    {"name": "audit_complete", "kind": "rate_ceiling",
     "metric": "audit.dropped", "max": 0},
]

#: Storm storyboard offsets (simulated cycles from the engine's t0)
#: for a 1k-user run: one CPU out at LOSS_AT, back at RESTORE_AT.
#: ``storm_offsets`` scales them with the population so the window
#: lands mid-execution at every scale (a 10k-user run spends the
#: first few million cycles admitting users; a storm placed there
#: would degrade an idle machine).
LOSS_AT = 400_000
RESTORE_AT = 1_200_000


def storm_offsets(n_users):
    scale = max(1, n_users // USERS_CHAOS_QUICK)
    return LOSS_AT * scale, RESTORE_AT * scale


def chaos_interval(n_users):
    """Sampling interval for the chaos leg, scaled with the population
    like the storm offsets so the whole run — storm window included —
    fits the sample ring instead of evicting its own evidence."""
    return INTERVAL * max(1, n_users // USERS_CHAOS_QUICK)

#: Wall-overhead ceiling for the sampler (ratio of sampled to
#: unsampled wall time).  Generous — wall clocks are noisy — but a
#: regression that makes polling O(samples·instruments) would blow
#: through it.
WALL_OVERHEAD_CEILING = 1.5


def _config(timeline=None, audit_level="all"):
    return kernel_config(fast_path=True, audit_level=audit_level,
                         timeline=timeline, **FRAMES)


def _timeline_spec(capacity=1024, interval=INTERVAL):
    return {"interval": interval, "capacity": capacity, "rules": RULES}


def run_workload(n_users, timeline=None, audit_level="all", seed=SEED):
    """(system, report) for one in-process driver run."""
    system = MulticsSystem(_config(timeline, audit_level)).boot()
    driver = WorkloadDriver(system, n_cpus=N_CPUS, batch_size=32)
    report = driver.run(generate_population(n_users, seed=seed))
    return system, report


def overhead_leg(n_users=USERS_SMALL):
    """Sampler on/off: identical simulation, bounded wall overhead."""
    t0 = time.perf_counter()
    sys_off, rep_off = run_workload(n_users)
    wall_off = time.perf_counter() - t0
    t0 = time.perf_counter()
    sys_on, rep_on = run_workload(n_users, timeline=_timeline_spec())
    wall_on = time.perf_counter() - t0

    def sim_only(report):
        doc = report.to_dict()
        for wall_key in ("wall_seconds", "users_per_sec", "cycles_per_sec"):
            doc.pop(wall_key, None)
        return doc

    identical = (rep_off.end_clock == rep_on.end_clock
                 and sim_only(rep_off) == sim_only(rep_on))
    doc = sys_on.timeline_document()
    ratio = wall_on / wall_off if wall_off else 0.0
    return {
        "clock_identical": identical,
        "end_clock": rep_on.end_clock,
        "samples": len(doc["samples"]),
        "wall_off_seconds": round(wall_off, 4),
        "wall_on_seconds": round(wall_on, 4),
        "wall_overhead_ratio": round(ratio, 3),
    }


def chaos_run(n_users, seed=SEED):
    """One run under the timed loss/restore storm, timeline on."""
    system = MulticsSystem(
        _config(_timeline_spec(interval=chaos_interval(n_users)),
                audit_level="deny")
    ).boot()
    driver = WorkloadDriver(system, n_cpus=N_CPUS, batch_size=32)
    loss_at, restore_at = storm_offsets(n_users)
    scenario = {
        "name": "e20-storm", "seed": 7,
        "controllers": [{"type": "timed", "events": [
            {"at": loss_at, "site": "cpu.loss", "kind": "offline"},
            {"at": restore_at, "site": "cpu.restore", "kind": "online"},
        ]}],
    }
    engine = system.chaos_engine(scenario, complex_=driver.complex)
    driver.on_round = engine.step
    report = driver.run(generate_population(n_users, seed=seed))
    return system, report, engine, system.timeline_document()


def busy_density(samples, lo, hi):
    """Executed cycles per elapsed cycle over samples in [lo, hi] —
    the timeline's own throughput view."""
    busy = elapsed = 0
    for sample in samples:
        if lo <= sample["t"] <= hi:
            busy += sample["counters"].get("smp.busy_cycles", 0)
            elapsed += sample["dt"]
    return busy / elapsed if elapsed else 0.0


def chaos_leg(n_users):
    """The storm's degradation window, read from the timeline."""
    system, report, engine, doc = chaos_run(n_users)
    # The raw timeline document is itself an export: the schema guard
    # (scripts/check_bench_schema.py) validates it by its schema tag.
    results = pathlib.Path(__file__).parent / "results"
    results.mkdir(exist_ok=True)
    (results / "timeline_e20.json").write_text(
        json.dumps(doc, indent=2, sort_keys=True) + "\n"
    )
    loss_t = next(t for t, s, _ in engine.applied if s == "cpu.loss")
    restore_t = next(t for t, s, _ in engine.applied if s == "cpu.restore")
    breaches = doc["breaches"]
    # Breaches land at sample times; the first sample at or after the
    # restore may still cover pre-restore time, hence the one-interval
    # grace on the right edge.
    confined = all(
        loss_t <= b["t"] <= restore_t + doc["interval"] for b in breaches
    )
    post = [s for s in doc["samples"]
            if s["t"] > restore_t + doc["interval"]]
    recovered = bool(post) and all(
        s["gauges"].get("smp.cpus") == N_CPUS for s in post
    )
    density_in = busy_density(doc["samples"], loss_t, restore_t)
    density_after = busy_density(
        doc["samples"], restore_t + doc["interval"], report.end_clock
    )
    return {
        "users": n_users,
        "jobs_completed": report.jobs_completed,
        "jobs_failed": report.jobs_failed,
        "events_applied": len(engine.applied),
        "loss_t": loss_t,
        "restore_t": restore_t,
        "breaches": len(breaches),
        "breach_rules": sorted({b["rule"] for b in breaches}),
        "breaches_confined": confined,
        "recovered_after": recovered,
        "busy_density_storm": round(density_in, 3),
        "busy_density_after": round(density_after, 3),
    }, system.metrics.snapshot()


def determinism_legs(n_users=USERS_SMALL):
    """Byte-identity: repeat runs, sharded repeats, 1-shard == driver."""
    sys_a, _ = run_workload(n_users, timeline=_timeline_spec())
    sys_b, _ = run_workload(n_users, timeline=_timeline_spec())
    doc_a = json.dumps(sys_a.timeline_document(), sort_keys=True)
    doc_b = json.dumps(sys_b.timeline_document(), sort_keys=True)

    config = _config(_timeline_spec())
    sharded_a = run_sharded(n_users, 2, SEED, config, mode="serial",
                            n_cpus=N_CPUS, batch_size=32)
    sharded_b = run_sharded(n_users, 2, SEED, config, mode="serial",
                            n_cpus=N_CPUS, batch_size=32)
    one_shard = run_sharded(n_users, 1, SEED, config, mode="serial",
                            n_cpus=N_CPUS, batch_size=32)
    shard_doc = json.dumps(one_shard.shards[0].timeline, sort_keys=True)
    return {
        "same_seed_identical": doc_a == doc_b,
        "sharded_identical":
            sharded_a.canonical_json() == sharded_b.canonical_json(),
        "merged_has_timeline": sharded_a.timeline is not None,
        "merged_shards": (sharded_a.timeline or {}).get("n_shards"),
        "one_shard_matches_driver": shard_doc == doc_a,
    }


def test_e20_timeline(report, export):
    t0 = time.perf_counter()

    overhead = overhead_leg()
    assert overhead["clock_identical"], \
        "sampler on/off must not change the simulation"
    assert overhead["samples"] > 0

    chaos, snapshot = chaos_leg(USERS_CHAOS_QUICK)
    assert chaos["jobs_completed"] == USERS_CHAOS_QUICK
    assert chaos["jobs_failed"] == 0
    assert chaos["events_applied"] == 2
    assert chaos["breaches"] > 0, "the storm must register in the log"
    assert chaos["breach_rules"] == ["capacity"], \
        "only the capacity floor may breach: faults cost time, not data"
    assert chaos["breaches_confined"], \
        "breaches must be confined to the storm window"
    assert chaos["recovered_after"], \
        "every post-recovery sample must show full capacity"
    assert 0 < chaos["busy_density_storm"] < chaos["busy_density_after"], \
        "the timeline must show a loaded machine degrading, not an idle one"

    determinism = determinism_legs()
    assert all(determinism[k] for k in (
        "same_seed_identical", "sharded_identical",
        "merged_has_timeline", "one_shard_matches_driver",
    ))

    wall = time.perf_counter() - t0
    export("E20", snapshot, extra={
        **{f"overhead_{k}": v for k, v in overhead.items()},
        **{f"chaos_{k}": v for k, v in chaos.items()},
        **determinism,
        "wall_seconds": round(wall, 4),
    })
    report("E20", [
        "E20: interval timeline + SLO health monitor (sampling reads",
        "     instruments only: simulated results identical on/off)",
        f"  chaos: {chaos['breaches']} breaches confined to "
        f"[{chaos['loss_t']}, {chaos['restore_t']}] cycles",
        f"  busy density {chaos['busy_density_storm']} in-storm vs "
        f"{chaos['busy_density_after']} recovered",
        "  same-seed timelines byte-identical; 1-shard == driver",
    ])


def bench_numbers(quick: bool = False) -> tuple[dict, dict]:
    """(derived numbers, snapshot) for scripts/run_benches.py.

    ``quick`` shrinks the chaos leg to 1k users so a local ``--quick``
    run stays interactive; the full run is the 10k-user storm.
    """
    t0 = time.perf_counter()
    overhead = overhead_leg()
    if not overhead["clock_identical"]:
        raise AssertionError("sampler on/off changed the simulation")
    if overhead["wall_overhead_ratio"] > WALL_OVERHEAD_CEILING:
        raise AssertionError(
            f"sampler wall overhead {overhead['wall_overhead_ratio']}x "
            f"exceeds the {WALL_OVERHEAD_CEILING}x ceiling"
        )

    users = USERS_CHAOS_QUICK if quick else USERS_CHAOS
    chaos, snapshot = chaos_leg(users)
    for key in ("breaches_confined", "recovered_after"):
        if not chaos[key]:
            raise AssertionError(f"chaos leg failed {key}")
    if chaos["jobs_completed"] != users or chaos["jobs_failed"]:
        raise AssertionError("storm must cost time, never jobs")
    if not chaos["breaches"]:
        raise AssertionError("the storm must register in the breach log")
    if not 0 < chaos["busy_density_storm"] < chaos["busy_density_after"]:
        raise AssertionError(
            "the storm window must show a loaded machine degrading"
        )

    determinism = determinism_legs()
    for key, value in determinism.items():
        if key != "merged_shards" and not value:
            raise AssertionError(f"determinism leg failed {key}")

    derived = {
        "cores": os.cpu_count() or 1,
        **{f"overhead_{k}": v for k, v in overhead.items()},
        **{f"chaos_{k}": v for k, v in chaos.items()},
        **determinism,
        "wall_seconds": round(time.perf_counter() - t0, 4),
    }
    return derived, snapshot


def main():  # pragma: no cover - manual entry point
    derived, _ = bench_numbers(quick=True)
    print(json.dumps(derived, indent=2))


if __name__ == "__main__":  # pragma: no cover
    main()
