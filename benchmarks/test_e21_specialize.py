"""E21 — specialized per-workload kernels with a penetration-regression
gate (ROADMAP item 2: the MultiK/KASR direction).

For each workload class (shell, compile, io, paging) a training run of
the seeded workload is profiled by :class:`KernelProfiler`;
``specialize()`` then generates a kernel whose gate table populates
only the profiled gates, everything else a deny-and-audit stub.

Measured, per profile:

* gate-count and protected-statement reduction vs. the full kernel
  (the sweep; the acceptance floor is >= 40% gate reduction);
* byte-identity: the specialized kernel replays its own training
  workload with the identical grant/deny audit trace, final simulated
  clock, and metrics snapshot (modulo the ``specialize.*`` names that
  exist only on the specialized system) — and zero deny-stub hits;
* the headline regression gate: the full E11 penetration suite reruns
  against every specialized kernel, requiring all attacks denied with
  deny-completeness in the bounded audit trail.

An orchestrator leg runs all four specialized kernels side-by-side
over one shared substrate, each tenant class admitted through its own
listener and denied (audited) on the first cross-class gate.
"""

import json
import time

from repro import MulticsSystem, kernel_config
from repro.errors import SpecializationDenial
from repro.kernel.orchestrator import KernelOrchestrator
from repro.kernel.specialize import KernelProfiler, specialize
from repro.security.flaws import run_penetration_suite
from repro.workloads import WorkloadDriver, generate_population

PROFILE_NAMES = ("shell", "compile", "io", "paging")
TRAIN_USERS = 240
QUICK_USERS = 80
SEED = 1975
N_CPUS = 2
GATE_REDUCTION_FLOOR = 0.40

#: E18's VM shape: small pages, a hierarchy deep enough to page.
FRAMES = dict(page_size=16, core_frames=16384, bulk_frames=32768,
              disk_frames=65536)

#: Report/derived keys that depend on host wall-clock, not the
#: simulated computation (excluded from the identity comparison).
WALL_KEYS = ("wall_seconds", "users_per_sec", "cycles_per_sec")


def _strip_specialize(snapshot_json: str) -> str:
    """Drop ``specialize.*`` names: they exist only on the system that
    actually built specialized tables."""
    doc = json.loads(snapshot_json)
    for section in ("counters", "gauges", "histograms"):
        doc[section] = {
            name: value
            for name, value in doc[section].items()
            if not name.startswith("specialize.")
        }
    return json.dumps(doc, indent=2)


def _sim_derived(derived: dict) -> dict:
    return {k: v for k, v in derived.items() if k not in WALL_KEYS}


def training_run(profile_name: str, n_users: int, kernel=None) -> dict:
    """Drive a single-class seeded population; optionally through a
    pre-installed specialized kernel (the replay leg)."""
    system = MulticsSystem(kernel_config(fast_path=True, **FRAMES))
    specialized = None
    if kernel is not None:
        specialized = kernel(system)
        system.install_supervisor(specialized)
    system.boot()
    profiler = KernelProfiler(system)
    driver = WorkloadDriver(system, n_cpus=N_CPUS)
    population = generate_population(
        n_users, seed=SEED, mix={profile_name: 1.0}
    )
    report = driver.run(population)
    return {
        "system": system,
        "specialized": specialized,
        "profile": profiler.profile(profile_name),
        "derived": report.to_dict(),
        "trace": [
            (r.action, r.object, r.outcome) for r in system.audit.records
        ],
        "final_clock": system.clock.now,
        "snapshot_json": system.metrics.to_json(),
    }


def identical(train: dict, replay: dict) -> bool:
    """Byte-identity of the training and specialized replay runs."""
    return (
        train["trace"] == replay["trace"]
        and train["final_clock"] == replay["final_clock"]
        and _strip_specialize(train["snapshot_json"])
        == _strip_specialize(replay["snapshot_json"])
        and _sim_derived(train["derived"]) == _sim_derived(replay["derived"])
    )


def penetration_leg(profile) -> dict:
    """Rerun the full E11 suite against a specialized kernel built
    from ``profile`` over a fresh system."""
    system = MulticsSystem(kernel_config()).boot()
    kernel = specialize(system, profile)
    report = run_penetration_suite(system, supervisor=kernel)
    return {
        "system_kind": report.system_kind,
        "attempted": report.attempted,
        "successes": report.successes,
        "deny_complete": (
            system.audit_trail.denials == len(system.audit.denied())
        ),
        "denials": len(system.audit.denied()),
    }


def specialize_sweep(n_users: int) -> dict:
    """Train, specialize, replay, and penetration-test every profile."""
    per_profile = {}
    for name in PROFILE_NAMES:
        train = training_run(name, n_users)
        profile = train["profile"]
        replay = training_run(
            name, n_users, kernel=lambda s, p=profile: specialize(s, p)
        )
        surface = replay["specialized"].surface_report()
        pen = penetration_leg(profile)
        per_profile[name] = {
            "train": train,
            "replay": replay,
            "surface": surface,
            "pen": pen,
            "identical": identical(train, replay),
            "replay_stub_hits": replay["specialized"].gates.deny_stub_hits,
        }
    return per_profile


def orchestrator_leg(per_profile: dict) -> dict:
    """All four specialized kernels over one substrate: every tenant's
    own ops granted, the first cross-class gate denied and audited."""
    system = MulticsSystem(kernel_config()).boot()
    orch = KernelOrchestrator(system)
    for name, leg in per_profile.items():
        orch.add_tenant(name, leg["train"]["profile"])
    sessions = {}
    for i, name in enumerate(per_profile):
        sessions[name] = orch.login(
            name, f"T{i}", "Load", f"t{i}-pw"
        )
    # Own-class work: granted by each tenant's own kernel.
    for name, session in sessions.items():
        segno = session.create_segment(f"{name}_data", n_pages=1)
        session.write_words(segno, [1, 2, 3])
        session.read_words(segno, 3)
    own_stub_hits = sum(
        orch.kernel_for(name).gates.deny_stub_hits for name in per_profile
    )
    # Cross-class probe: no workload profile ever trained a network
    # gate, so every tenant's kernel must refuse it (the full kernel
    # on the same substrate would grant it).
    cross_denials = 0
    for name, session in sessions.items():
        assert "net_$send" in system.supervisor.gates
        try:
            orch.call(session.process, "net_$send", "remote-host", "leak")
        except SpecializationDenial:
            cross_denials += 1
    snapshot = system.metrics.snapshot()
    return {
        "tenants": len(per_profile),
        "own_stub_hits": own_stub_hits,
        "cross_denials": cross_denials,
        "routed_calls": orch.routed_calls,
        "deny_complete": (
            system.audit_trail.denials == len(system.audit.denied())
        ),
        "snapshot_json": system.metrics.to_json(),
        "gauges": snapshot["gauges"],
    }


def _derive(per_profile: dict, orch: dict, n_users: int) -> dict:
    derived = {
        "train_users": n_users,
        "gates_total": next(
            iter(per_profile.values())
        )["surface"]["gates_total"],
        "max_gate_reduction": max(
            leg["surface"]["gate_reduction"] for leg in per_profile.values()
        ),
        "all_identical": all(
            leg["identical"] for leg in per_profile.values()
        ),
        "pen_successes_total": sum(
            leg["pen"]["successes"] for leg in per_profile.values()
        ),
        "pen_attempted_total": sum(
            leg["pen"]["attempted"] for leg in per_profile.values()
        ),
        "all_deny_complete": all(
            leg["pen"]["deny_complete"] for leg in per_profile.values()
        ),
        "orchestrator_tenants": orch["tenants"],
        "orchestrator_cross_denials": orch["cross_denials"],
        "orchestrator_own_stub_hits": orch["own_stub_hits"],
    }
    for name, leg in per_profile.items():
        surface = leg["surface"]
        derived[f"{name}_gates_live"] = surface["gates_live"]
        derived[f"{name}_gate_reduction"] = surface["gate_reduction"]
        derived[f"{name}_statement_reduction"] = surface["statement_reduction"]
        derived[f"{name}_pen_successes"] = leg["pen"]["successes"]
        derived[f"{name}_identical"] = leg["identical"]
    return derived


def test_e21_specialize(report, export):
    t0 = time.perf_counter()
    per_profile = specialize_sweep(TRAIN_USERS)

    for name, leg in per_profile.items():
        surface = leg["surface"]
        # (a) the specialized kernel replays its own training workload
        # byte-identically, never touching a deny stub.
        assert leg["identical"], f"{name}: replay diverged"
        assert leg["replay_stub_hits"] == 0
        d = leg["replay"]["derived"]
        assert d["admitted"] == TRAIN_USERS
        assert d["login_failures"] == 0
        assert d["jobs_failed"] == 0
        # (b) the headline gate: the full E11 suite, all attacks
        # denied, deny-complete audit trail.
        assert leg["pen"]["successes"] == 0, (
            f"{name}: {leg['pen']}"
        )
        assert leg["pen"]["deny_complete"]
        assert leg["pen"]["system_kind"] == f"specialized:{name}"
        # (c) the census partitions the full inventory.
        assert surface["gates_live"] + surface["deny_stubs"] \
            == surface["gates_total"]

    # (d) the sweep clears the reduction floor.
    max_reduction = max(
        leg["surface"]["gate_reduction"] for leg in per_profile.values()
    )
    assert max_reduction >= GATE_REDUCTION_FLOOR

    # (e) orchestrated side-by-side kernels: own work granted,
    # cross-class work denied and audited.
    orch = orchestrator_leg(per_profile)
    assert orch["own_stub_hits"] == 0
    assert orch["cross_denials"] == orch["tenants"] == len(PROFILE_NAMES)
    assert orch["deny_complete"]
    assert orch["gauges"]["specialize.tenants"] == len(PROFILE_NAMES)

    derived = _derive(per_profile, orch, TRAIN_USERS)
    derived["wall_seconds"] = round(time.perf_counter() - t0, 4)
    snapshot = json.loads(orch["snapshot_json"])
    export("E21", snapshot, extra=derived)
    rows = [
        "E21: specialized per-workload kernels (profiler -> deny stubs)",
        f"  full inventory: {derived['gates_total']} gates; floor "
        f">= {GATE_REDUCTION_FLOOR:.0%} reduction for one profile",
    ]
    for name, leg in per_profile.items():
        surface = leg["surface"]
        rows.append(
            f"  {name:<8} live {surface['gates_live']:>2}/"
            f"{surface['gates_total']} gates "
            f"({surface['gate_reduction']:.0%} cut, "
            f"{surface['statement_reduction']:.0%} statements), "
            f"E11 {leg['pen']['successes']}/{leg['pen']['attempted']} "
            f"attacks, identical={leg['identical']}"
        )
    rows.append(
        f"  orchestrator: {orch['tenants']} tenants side-by-side, "
        f"{orch['cross_denials']} cross-class denials, "
        f"0 own-class stub hits"
    )
    report("E21", rows)


def bench_numbers(quick: bool = False) -> tuple[dict, dict]:
    """(derived numbers, metrics snapshot) for scripts/run_benches.py."""
    t0 = time.perf_counter()
    n_users = QUICK_USERS if quick else TRAIN_USERS
    per_profile = specialize_sweep(n_users)
    orch = orchestrator_leg(per_profile)
    derived = _derive(per_profile, orch, n_users)
    derived["wall_seconds"] = round(time.perf_counter() - t0, 4)
    return derived, json.loads(orch["snapshot_json"])
