"""E7 — policy/mechanism separation by rings: "The policy algorithm,
however, could never read or write the contents of pages, learn the
segment to which each page belonged, or cause one page to overwrite
another ... It could only cause denial of use."

Measured: three adversarial replacement policies driven against the
ring-0 page-removal mechanism's gates.  Unauthorized disclosures and
modifications stay at zero (verified against page contents and the
snooper's loot); the thrasher measurably degrades service (refaults) —
denial, and only denial.
"""

from repro.config import PageControlKind, SystemConfig
from repro.hw.clock import Simulator
from repro.hw.memory import MemoryHierarchy
from repro.proc.scheduler import TrafficController
from repro.vm.page_control import make_page_control
from repro.vm.policy_mechanism import (
    ForgingRemovalPolicy,
    PageRemovalMechanism,
    SensibleRemovalPolicy,
    SnoopingRemovalPolicy,
    ThrashingRemovalPolicy,
)
from repro.vm.segment_control import ActiveSegmentTable

SECRET = 0o123454321


def build():
    config = SystemConfig(
        page_size=16, core_frames=16, bulk_frames=64, disk_frames=512,
    )
    sim = Simulator()
    tc = TrafficController(sim, config)
    hierarchy = MemoryHierarchy(config)
    ast = ActiveSegmentTable(hierarchy)
    pc = make_page_control(
        PageControlKind.SEQUENTIAL, sim, tc, hierarchy, ast, config
    )
    seg = ast.activate(uid=1, n_pages=hierarchy.core.n_frames - 2)
    for page in range(seg.n_pages):
        pc.service_sync(seg, page)
        hierarchy.core.write(seg.ptws[page].frame, 0, SECRET + page)
    return pc, seg, hierarchy


def drive(policy_cls):
    """Run one policy through a fault/evict cycle; return observations."""
    pc, seg, hierarchy = build()
    mechanism = PageRemovalMechanism(pc)
    policy = policy_cls()
    moves = policy.make_room(mechanism.gates(), target=6)
    # Refault everything and verify content integrity.
    intact = 0
    for page in range(seg.n_pages):
        pc.service_sync(seg, page)
        if hierarchy.core.read(seg.ptws[page].frame, 0) == SECRET + page:
            intact += 1
    refaults = pc.faults_serviced
    loot = len(getattr(policy, "loot", []))
    rejected = mechanism.invalid_calls
    return {
        "moves": moves,
        "intact": intact,
        "total": seg.n_pages,
        "refaults": refaults,
        "loot": loot,
        "rejected": rejected,
    }


def test_e7_policy_confined_to_denial(benchmark, report):
    results = {
        cls.name: drive(cls)
        for cls in (
            SensibleRemovalPolicy,
            ThrashingRemovalPolicy,
            ForgingRemovalPolicy,
            SnoopingRemovalPolicy,
        )
    }
    benchmark(drive, SensibleRemovalPolicy)

    for name, row in results.items():
        # Integrity and confidentiality hold for every policy.
        assert row["intact"] == row["total"], name
        assert row["loot"] == 0, name
    # The thrasher causes at least as much refaulting as the sensible
    # policy: denial of use is the only lever it has.
    assert results["thrasher"]["refaults"] >= results["sensible"]["refaults"]
    assert results["forger"]["rejected"] >= 64

    lines = [
        "E7: ring-separated replacement policy (paper: a malicious policy",
        "    'could only cause denial of use')",
        "  policy      moves  refaults  pages-intact  leaked  forged-rejected",
    ]
    for name, row in results.items():
        lines.append(
            f"  {name:<10} {row['moves']:>6} {row['refaults']:>9} "
            f"{row['intact']:>7}/{row['total']:<5} {row['loot']:>5} "
            f"{row['rejected']:>10}"
        )
    report("E7", lines)
