"""E9 — the two-layer process implementation: a *fixed* number of
virtual processors multiplexed over the real ones (level 1, no VM
dependency), several dedicated to kernel mechanisms, and the rest
multiplexed among any number of user processes (level 2).

Measured: the dedication census after boot, level 1's structural
independence from the VM (its import graph), and a run of twice as
many user processes as pooled virtual processors to completion.
"""

import ast as python_ast
import inspect

from repro.config import SystemConfig
from repro.hw.clock import Simulator
from repro.proc.ipc import Block, Charge, Wakeup
from repro.proc.process import Process, ProcessState
from repro.proc.scheduler import TrafficController


def run_overcommit(n_processes: int, n_vps: int):
    config = SystemConfig(
        page_size=16, core_frames=8, bulk_frames=32, disk_frames=256,
        n_processors=2, n_virtual_processors=n_vps, quantum=200,
    )
    sim = Simulator()
    tc = TrafficController(sim, config)
    # Two dedicated kernel processes, as page control would have.
    rendezvous = tc.create_channel("kernel.work")

    def kernel_body(proc):
        while True:
            yield Block(rendezvous)
            yield Charge(5)

    for i in range(2):
        tc.add_process(Process(f"kernel{i}", body=kernel_body, dedicated=True))

    def user_body(proc):
        for _ in range(10):
            yield Charge(20)
            yield Wakeup(rendezvous)

    users = [Process(f"user{i}", body=user_body) for i in range(n_processes)]
    for user in users:
        tc.add_process(user)
    tc.run(max_events=2_000_000)
    return tc, users


def test_e9_two_layer_processes(benchmark, report):
    n_vps = 6
    n_processes = 2 * (n_vps - 2)
    tc, users = benchmark(run_overcommit, n_processes, n_vps)

    assert all(u.state is ProcessState.STOPPED for u in users)
    assert tc.vpt.dedicated_total == 2
    assert len(tc.vpt) == n_vps          # the population never grew
    assert tc.vp_waits > 0               # level 2 really multiplexed

    # Level 1 independence from the VM: no repro.vm / repro.fs imports.
    import repro.proc.virtual_processor as level1

    tree = python_ast.parse(inspect.getsource(level1))
    imports = set()
    for node in python_ast.walk(tree):
        if isinstance(node, python_ast.Import):
            imports.update(alias.name for alias in node.names)
        elif isinstance(node, python_ast.ImportFrom) and node.module:
            imports.add(node.module)
    vm_free = not any(m.startswith(("repro.vm", "repro.fs")) for m in imports)
    assert vm_free

    report("E9", [
        "E9: two-layer process implementation (paper: fixed VP population,",
        "    level 1 independent of the virtual memory, dedicated kernel VPs)",
        f"  virtual processors (fixed)             {len(tc.vpt):>6}",
        f"  dedicated to kernel processes          {tc.vpt.dedicated_total:>6}",
        f"  pooled for user multiplexing           {tc.vpt.pooled_total:>6}",
        f"  user processes completed               {len(users):>6}",
        f"  times a process waited for a VP        {tc.vp_waits:>6}",
        f"  level 1 imports repro.vm / repro.fs    {'no' if vm_free else 'YES':>6}",
    ])
