"""E10 — system initialization: "produce on a system tape a bit pattern
which, when loaded into memory, manifests a fully initialized system,
rather than letting the system bootstrap itself in a complex way each
time ...  One pattern of operation may be much simpler to certify than
the other."

Measured: privileged steps executed at boot, statements of
initialization code a certifier must audit under each strategy, and
functional equivalence of the booted systems.
"""

from repro import MulticsSystem, kernel_config
from repro.config import InitKind
from repro.init import bootstrap as bootstrap_module
from repro.init.bootstrap import BootstrapInitializer, standard_steps
from repro.init.image import ImageBuilder, boot_from_image, _manifest
from repro.kernel.metrics import count_statements
from repro.kernel.services import KernelServices


def boot_system(kind: InitKind):
    system = MulticsSystem(kernel_config(init=kind)).boot()
    system.register_user("Alice", "Crypto", "pw")
    session = system.login("Alice", "Crypto", "pw")
    session.create_segment("sanity")
    return system


def test_e10_initialization(benchmark, report):
    boot_sys = boot_system(InitKind.BOOTSTRAP)
    image_sys = benchmark(boot_system, InitKind.IMAGE)

    assert boot_sys.boot_privileged_steps == len(standard_steps())
    assert image_sys.boot_privileged_steps == 2

    # Code a certifier must audit as *boot-time kernel execution*:
    # bootstrap: every step body; image: the seal check + manifest loop.
    bootstrap_stmts = count_statements(bootstrap_module)
    image_boot_stmts = count_statements(boot_from_image) + count_statements(
        _manifest
    )

    # Functional equivalence.
    names_a = sorted(
        b.name for b in boot_sys.services.tree.root.list_branches()
    )
    names_b = sorted(
        b.name for b in image_sys.services.tree.root.list_branches()
    )
    assert set(names_a) <= set(names_b) or set(names_b) <= set(names_a)

    report("E10", [
        "E10: system initialization (paper: memory image vs in-kernel",
        "     bootstrap; one pattern 'much simpler to certify')",
        "                                     bootstrap       image",
        f"  privileged steps at boot        {boot_sys.boot_privileged_steps:>12} {image_sys.boot_privileged_steps:>11}",
        f"  boot-time kernel code (stmts)   {bootstrap_stmts:>12} {image_boot_stmts:>11}",
        "  image generation runs in a user environment of a previous system",
    ])
