"""E18 — multi-user workload at scale: the kernel the paper describes
served an interactive time-sharing population, so the simulator must
sustain one.  A seeded population of mixed user profiles (shell,
compile, io, paging) logs in through the non-privileged E14 listener
path under a Poisson arrival process and runs its interactive bursts
through the SMP complex (:mod:`repro.workloads`).

Measured: wall-clock throughput (simulated cycles/sec and admitted
users/sec) at 1k and 10k users with the refactored fast-path core
(``SystemConfig.fast_path``), asserting >= 2x wall speedup over the
pre-refactor core at 1k — guarded by an architectural-equivalence leg:
the fast and classic runs must produce byte-identical grant/deny audit
traces, job results, metrics snapshots, and final simulated clocks.
The speedup claim is only citable because the two runs are the same
computation.
"""

import json
import time

from repro import MulticsSystem, kernel_config
from repro.workloads import WorkloadDriver, generate_population

SPEEDUP_FLOOR = 2.0
USERS_1K = 1_000
USERS_10K = 10_000
SEED = 1975
N_CPUS = 2

#: Small pages (the profile strides assume them) and a hierarchy deep
#: enough that 10k users' working sets fit on disk and thrash core.
FRAMES = dict(page_size=16, core_frames=16384, bulk_frames=32768,
              disk_frames=65536)


def workload_run(n_users: int, fast: bool, seed: int = SEED) -> dict:
    """Boot, drive a seeded population, return numbers + identity
    artifacts (trace/clock/snapshot serialized before the system is
    torn down, so a later boot's cam broadcasts cannot touch them)."""
    system = MulticsSystem(
        kernel_config(fast_path=fast, **FRAMES)
    ).boot()
    driver = WorkloadDriver(system, n_cpus=N_CPUS)
    population = generate_population(n_users, seed=seed)
    report = driver.run(population)
    return {
        "report": report,
        "derived": report.to_dict(),
        "trace": [
            (r.action, r.object, r.outcome) for r in system.audit.records
        ],
        "final_clock": system.clock.now,
        "snapshot_json": system.metrics.to_json(),
    }


def equivalent(fast_run: dict, classic_run: dict) -> bool:
    """The architectural-equivalence guard: same traces, same clock,
    same snapshot."""
    return (
        fast_run["trace"] == classic_run["trace"]
        and fast_run["final_clock"] == classic_run["final_clock"]
        and fast_run["snapshot_json"] == classic_run["snapshot_json"]
    )


def test_e18_workload(report, export):
    t0 = time.perf_counter()
    fast_1k = workload_run(USERS_1K, fast=True)
    classic_1k = workload_run(USERS_1K, fast=False)

    # (a) equivalence: fast on/off is the same computation, byte for
    # byte — grant/deny trace, final clock, metrics snapshot.
    assert fast_1k["trace"] == classic_1k["trace"]
    assert fast_1k["final_clock"] == classic_1k["final_clock"]
    assert fast_1k["snapshot_json"] == classic_1k["snapshot_json"]

    # (b) nothing was refused or contained at 1k on either core.
    for leg in (fast_1k, classic_1k):
        d = leg["derived"]
        assert d["admitted"] == USERS_1K
        assert d["login_failures"] == 0
        assert d["jobs_failed"] == 0
        assert d["jobs_completed"] == USERS_1K

    # (c) the fast core clears the wall-clock floor on the identical
    # computation.
    speedup = (classic_1k["report"].wall_seconds
               / fast_1k["report"].wall_seconds)
    assert speedup >= SPEEDUP_FLOOR, (
        f"fast path {speedup:.2f}x < {SPEEDUP_FLOOR}x floor"
    )

    # (d) scale: 10k users end-to-end, every one admitted, every burst
    # completed.
    fast_10k = workload_run(USERS_10K, fast=True)
    d10 = fast_10k["derived"]
    assert d10["admitted"] == USERS_10K
    assert d10["login_failures"] == 0
    assert d10["jobs_failed"] == 0
    assert d10["jobs_completed"] == USERS_10K
    wall = time.perf_counter() - t0

    snapshot = json.loads(fast_10k["snapshot_json"])
    d1 = fast_1k["derived"]
    export("E18", snapshot, extra={
        "users_1k": USERS_1K,
        "users_10k": USERS_10K,
        "wall_speedup_1k": round(speedup, 3),
        "equivalent": True,
        "users_per_sec_1k": d1["users_per_sec"],
        "cycles_per_sec_1k": d1["cycles_per_sec"],
        "users_per_sec_10k": d10["users_per_sec"],
        "cycles_per_sec_10k": d10["cycles_per_sec"],
        "p50_latency_cycles_10k": d10["p50_latency_cycles"],
        "p95_latency_cycles_10k": d10["p95_latency_cycles"],
        "wall_seconds": round(wall, 4),
    })
    report("E18", [
        "E18: multi-user workload engine (seeded profiles, Poisson",
        "     arrivals, E14 bulk login, SMP batches)",
        f"  fast-path speedup at {USERS_1K} users: {speedup:.2f}x wall "
        f"(floor {SPEEDUP_FLOOR}x), byte-identical traces/clock/snapshot",
        f"  {USERS_10K} users end-to-end: "
        f"{d10['users_per_sec']:.0f} users/sec, "
        f"{d10['cycles_per_sec']:.0f} simulated cycles/sec",
        f"  latency p50/p95 at 10k: {d10['p50_latency_cycles']} / "
        f"{d10['p95_latency_cycles']} cycles",
    ])


def bench_numbers(quick: bool = False) -> tuple[dict, dict]:
    """(derived numbers, metrics snapshot) for scripts/run_benches.py.

    ``quick`` skips the 10k-user leg (its keys are then absent) so a
    local ``--quick`` run stays interactive.
    """
    t0 = time.perf_counter()
    fast_1k = workload_run(USERS_1K, fast=True)
    classic_1k = workload_run(USERS_1K, fast=False)
    d1 = fast_1k["derived"]
    derived = {
        "users_1k": USERS_1K,
        "equivalent": equivalent(fast_1k, classic_1k),
        "wall_speedup_1k": round(
            classic_1k["report"].wall_seconds
            / fast_1k["report"].wall_seconds, 3,
        ),
        "users_per_sec_1k": d1["users_per_sec"],
        "cycles_per_sec_1k": d1["cycles_per_sec"],
    }
    snapshot = json.loads(fast_1k["snapshot_json"])
    if not quick:
        fast_10k = workload_run(USERS_10K, fast=True)
        d10 = fast_10k["derived"]
        derived.update({
            "users_10k": USERS_10K,
            "users_per_sec_10k": d10["users_per_sec"],
            "cycles_per_sec_10k": d10["cycles_per_sec"],
            "p50_latency_cycles_10k": d10["p50_latency_cycles"],
            "p95_latency_cycles_10k": d10["p95_latency_cycles"],
            "admitted_10k": d10["admitted"],
            "jobs_failed_10k": d10["jobs_failed"],
        })
        snapshot = json.loads(fast_10k["snapshot_json"])
    derived["wall_seconds"] = round(time.perf_counter() - t0, 4)
    return derived, snapshot
