"""Ablation A2 — the core freer's low-water mark.

The parallel page-control design keeps "some small number of free
primary memory blocks" available.  This ablation sweeps that number:
too low and faulting processes stall waiting for the freer; too high
and resident pages are evicted needlessly (more refaults).
"""

import statistics

from repro.config import PageControlKind, SystemConfig
from repro.hw.clock import Simulator
from repro.hw.memory import MemoryHierarchy
from repro.proc.process import Process, ProcessState
from repro.proc.scheduler import TrafficController
from repro.vm.page_control import make_page_control
from repro.vm.segment_control import ActiveSegmentTable

TARGETS = [1, 2, 4, 6]


def run_with_target(target: int):
    config = SystemConfig(
        page_size=16, core_frames=10, bulk_frames=40, disk_frames=512,
        n_processors=2, n_virtual_processors=8, quantum=10_000,
        free_core_target=target,
    )
    sim = Simulator()
    tc = TrafficController(sim, config)
    hierarchy = MemoryHierarchy(config)
    ast = ActiveSegmentTable(hierarchy)
    pc = make_page_control(
        PageControlKind.PARALLEL, sim, tc, hierarchy, ast, config
    )
    segments = [ast.activate(uid=i, n_pages=8) for i in range(3)]

    def body(seg):
        def gen(proc):
            for _round in range(3):
                for page in range(seg.n_pages):
                    yield from pc.touch(proc, seg, page)

        return gen

    workers = [Process(f"w{i}", body=body(s)) for i, s in enumerate(segments)]
    for worker in workers:
        tc.add_process(worker)
    tc.run(max_events=2_000_000)
    assert all(w.state is ProcessState.STOPPED for w in workers)
    latencies = [r.latency for r in pc.fault_records]
    return {
        "faults": pc.faults_serviced,
        "mean_latency": statistics.mean(latencies),
        "evictions": pc.core_evictions,
        "finish": sim.clock.now,
    }


def test_a2_freer_low_water_mark(benchmark, report):
    results = {target: run_with_target(target) for target in TARGETS}
    benchmark(run_with_target, 4)

    lines = [
        "A2 (ablation): core freer low-water mark (free_core_target)",
        "  target   faults   evictions   mean-latency   completion",
    ]
    for target, row in results.items():
        lines.append(
            f"  {target:>6} {row['faults']:>8} {row['evictions']:>11} "
            f"{row['mean_latency']:>14.0f} {row['finish']:>12}"
        )
    report("A2", lines)
