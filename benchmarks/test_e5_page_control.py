"""E5 — page control: "The path taken by a user process on a page fault
is greatly simplified" by the dedicated-process design; "the overall
structure looks as though it will be much simpler."

Measured, under an identical fault storm against a three-level memory
hierarchy: how many page-moving steps the *faulting process itself*
executes (the paper's structural point), fault latency, and the
worst-case cascade depth.
"""

from repro.config import PageControlKind, SystemConfig
from repro.hw.clock import Simulator
from repro.hw.memory import MemoryHierarchy
from repro.obs import MetricsRegistry
from repro.proc.process import Process, ProcessState
from repro.proc.scheduler import TrafficController
from repro.vm.page_control import make_page_control
from repro.vm.segment_control import ActiveSegmentTable


def storm_config() -> SystemConfig:
    return SystemConfig(
        page_size=16, core_frames=8, bulk_frames=12, disk_frames=512,
        n_processors=2, n_virtual_processors=8, quantum=5000,
    )


def run_storm(kind: PageControlKind):
    """Four processes sweep segments larger than core, twice.

    Returns the registry *snapshot* — the storm's whole measurement
    surface (fault counts, latency and step histograms, the finish
    time on the simulated clock) read through the export API.
    """
    config = storm_config()
    sim = Simulator()
    metrics = MetricsRegistry(clock=sim.clock)
    tc = TrafficController(sim, config, metrics=metrics)
    hierarchy = MemoryHierarchy(config, metrics=metrics)
    ast = ActiveSegmentTable(hierarchy)
    pc = make_page_control(kind, sim, tc, hierarchy, ast, config,
                           metrics=metrics)
    segments = [ast.activate(uid=i, n_pages=12) for i in range(4)]

    def body(seg):
        def gen(proc):
            for _sweep in range(2):
                for page in range(seg.n_pages):
                    yield from pc.touch(proc, seg, page)

        return gen

    workers = [Process(f"w{i}", body=body(s)) for i, s in enumerate(segments)]
    for worker in workers:
        tc.add_process(worker)
    tc.run(max_events=2_000_000)
    assert all(w.state is ProcessState.STOPPED for w in workers)
    return metrics.snapshot()


def summarize(snap):
    latency = snap["histograms"]["pc.fault_latency"]
    steps = snap["histograms"]["pc.fault_steps"]
    return {
        "faults": snap["counters"]["pc.faults_serviced"],
        "mean_latency": latency["mean"],
        "p_max_latency": latency["max"],
        "mean_steps": steps["mean"],
        "max_steps": steps["max"],
        "evictions": snap["counters"]["pc.core_evictions"],
        "elapsed": snap["clock"],
    }


def test_e5_fault_path_simplification(benchmark, report, export):
    seq_snap = run_storm(PageControlKind.SEQUENTIAL)
    par_snap = benchmark(run_storm, PageControlKind.PARALLEL)

    seq = summarize(seq_snap)
    par = summarize(par_snap)
    seq_time, par_time = seq["elapsed"], par["elapsed"]

    export("E5", par_snap, extra={
        "sequential": seq, "parallel": par,
    })

    # The structural claim: the faulting process's path collapses to a
    # single step in the new design; the old design cascades.
    assert par["max_steps"] <= 1
    assert seq["max_steps"] >= 2

    report("E5", [
        "E5: page-fault path (paper: faulting process 'can just wait ...",
        "    and then initiate the transfer'; old design cascades)",
        "                                          sequential    parallel",
        f"  faults serviced                      {seq['faults']:>11} {par['faults']:>11}",
        f"  page-moves in faulting process (max) {seq['max_steps']:>11} {par['max_steps']:>11}",
        f"  page-moves in faulting process (avg) {seq['mean_steps']:>11.2f} {par['mean_steps']:>11.2f}",
        f"  fault latency, mean (cycles)         {seq['mean_latency']:>11.0f} {par['mean_latency']:>11.0f}",
        f"  fault latency, worst (cycles)        {seq['p_max_latency']:>11} {par['p_max_latency']:>11}",
        f"  storm completion time (cycles)       {seq_time:>11} {par_time:>11}",
    ])
