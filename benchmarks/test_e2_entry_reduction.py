"""E2 — "The linker and reference name removal projects together reduce
the number of user-available supervisor entries by approximately one
third."

Measured: the combined linker + naming share of the legacy perimeter,
plus the additional reductions (device I/O consolidation, login
removal) the full security kernel applies.
"""

from repro.kernel.kernel import build_kernel
from repro.kernel.legacy import build_legacy
from repro.kernel.metrics import gate_census, linker_and_naming_removal


def test_e2_user_available_entry_reduction(benchmark, report):
    legacy, kernel = benchmark(lambda: (build_legacy(), build_kernel()))
    comparison = linker_and_naming_removal(legacy)
    legacy_census = gate_census(legacy)
    kernel_census = gate_census(kernel)

    assert 0.30 <= comparison.fraction_removed <= 0.42
    assert kernel_census.user_available < legacy_census.user_available

    total_reduction = 1 - kernel_census.user_available / legacy_census.user_available
    report("E2", [
        "E2: supervisor entry reduction (paper: linker+naming ~ one third)",
        f"  legacy user-available entries          {comparison.before:>6}",
        f"  removed by linker project              {legacy_census.by_removal.get('linker', 0):>6}",
        f"  removed by naming project              {legacy_census.by_removal.get('naming', 0):>6}",
        f"  measured linker+naming fraction        {comparison.fraction_removed:>6.1%}",
        "  paper claim                           ~33.3%",
        f"  full security kernel entries           {kernel_census.user_available:>6}"
        f"  (total reduction {total_reduction:.1%}, incl. device-I/O + login projects)",
    ])
