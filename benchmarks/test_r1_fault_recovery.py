"""R1 — fault recovery: denial of use is the worst case.

The paper's containment claim: an uncertified component's failure "can
cause only denial of use, never unauthorized release or modification".
This bench runs the standard workload under increasingly hostile fault
plans and records what the recovery layer did with every injected
fault — recovered, degraded, or fatal — plus the recovery latency in
simulated ticks and the security ledger (any Eve access granted?).
"""

from repro.faults.harness import (
    harness_config,
    run_crash_recovery,
    security_decisions,
    standard_workload,
)
from repro.faults.plan import FaultPlan, FaultSpec
from repro.system import MulticsSystem

from conftest import fmt_row


def hostile_plan(scale: float, seed: int = 17) -> FaultPlan:
    return FaultPlan(
        [
            FaultSpec("memory.core.read", "parity", rate=0.05 * scale),
            FaultSpec("memory.transfer", "transfer_error", rate=0.1 * scale),
            FaultSpec("device.*", "transfer_error", rate=0.1 * scale),
            FaultSpec("device.*", "hang", rate=0.05 * scale),
            FaultSpec("net.deliver", "duplicate", rate=0.15 * scale),
            FaultSpec("net.deliver", "drop", rate=0.05 * scale),
        ],
        seed=seed,
    )


def run_under_fire(scale: float):
    cfg = harness_config(
        fault_plan=hostile_plan(scale) if scale > 0 else None
    )
    system = MulticsSystem(cfg).boot()
    system.register_user("Alice", "Crypto", "alice-pw")
    system.register_user("Eve", "Spies", "eve-pw")
    result = standard_workload(system)
    eve_grants = [
        d for d in security_decisions(system.services.audit)
        if d[0].startswith("Eve") and d[3] == "granted" and "Alice" in d[1]
    ]
    # Everything the recovery plane measured comes from the registry
    # snapshot.  At scale 0 no injector exists, so the faults.* names
    # are simply absent — hence the .get(..., 0) defaults.
    snap = system.metrics.snapshot()
    counters = snap["counters"]
    recovery = snap["histograms"].get("faults.recovery_ticks")
    return {
        "injected": counters.get("faults.injected", 0),
        "recovered": counters.get("faults.recovered", 0),
        "degraded": counters.get("faults.degraded", 0),
        "fatal": counters.get("faults.fatal", 0),
        "denied_use": result.denied_use,
        "probes_denied": result.expected_denials,
        "eve_grants": len(eve_grants),
        "mean_recovery": recovery["mean"] if recovery and recovery["count"] else None,
        "elapsed": snap["clock"],
        "snapshot": snap,
    }


def test_r1_fault_recovery(benchmark, report, export):
    scales = [0.0, 1.0, 2.0, 4.0]
    runs = {scale: run_under_fire(scale) for scale in scales}

    export("R1", runs[1.0]["snapshot"], extra={
        str(s): {k: v for k, v in runs[s].items() if k != "snapshot"}
        for s in scales
    })

    # The benchmark fixture times the moderately-hostile run.
    benchmark(lambda: run_under_fire(1.0))

    for scale, r in runs.items():
        # Containment holds at every hostility level.
        assert r["eve_grants"] == 0
        assert r["probes_denied"] == 2
        if scale > 0:
            assert r["injected"] >= 1
            # Every fault was handled by the recovery plane; none
            # vanished silently (drop has no recovery by design).
            assert r["recovered"] + r["degraded"] + r["fatal"] >= 1

    # Crash-recovery latency: boot-time salvage under injection.
    crash = run_crash_recovery(
        config=harness_config(fault_plan=hostile_plan(1.0)), seed=17
    )
    assert crash.violations_after == []
    assert crash.unauthorized == []

    def ticks(r):
        if r["mean_recovery"] is None:
            return "-"
        return f"{r['mean_recovery']:.0f}"

    lines = [
        "R1 fault recovery (denial of use is the worst case)",
        fmt_row("fault-plan hostility (rate scale)", *scales),
        fmt_row("faults injected", *[runs[s]["injected"] for s in scales]),
        fmt_row("recovered (retry/watchdog/dedup)",
                *[runs[s]["recovered"] for s in scales]),
        fmt_row("degraded (equipment retired)",
                *[runs[s]["degraded"] for s in scales]),
        fmt_row("fatal (denial of use)", *[runs[s]["fatal"] for s in scales]),
        fmt_row("workload ops denied use",
                *[runs[s]["denied_use"] for s in scales]),
        fmt_row("mean recovery latency (ticks)",
                *[ticks(runs[s]) for s in scales]),
        fmt_row("Eve probes denied (of 2)",
                *[runs[s]["probes_denied"] for s in scales]),
        fmt_row("unauthorized accesses", *[runs[s]["eve_grants"] for s in scales]),
        fmt_row("crash+salvage: damage handled",
                crash.salvage_report.damage_found),
        fmt_row("crash+salvage: violations after", len(crash.violations_after)),
    ]
    report("R1", lines)
