"""E11 — penetration: "in all general-purpose systems confronted, a
wily user can construct a program that can obtain unauthorized access
to information stored within the system"; the kernel systematically
excludes those flaw classes.

Measured: the Linde-catalog attack suite against the live legacy
supervisor and against the live security kernel.
"""

from repro import MulticsSystem, kernel_config, legacy_config
from repro.security.flaws import STANDARD_ATTACKS, run_penetration_suite


def attack_both():
    legacy = run_penetration_suite(MulticsSystem(legacy_config()).boot())
    kernel = run_penetration_suite(MulticsSystem(kernel_config()).boot())
    return legacy, kernel


def test_e11_penetration_exercise(benchmark, report):
    legacy, kernel = benchmark(attack_both)

    assert legacy.successes >= 3      # the paper's grim starting point
    assert kernel.successes == 0      # the kernel's whole purpose

    lines = [
        "E11: penetration exercise (paper: every general-purpose system",
        "     confronted was penetrable; the kernel excludes the classes)",
        f"  attacks attempted: {legacy.attempted} "
        f"(flaw classes: {len(STANDARD_ATTACKS)})",
        "  attack                          legacy      kernel",
    ]
    kernel_by_name = {r.attack: r for r in kernel.results}
    for result in legacy.results:
        twin = kernel_by_name[result.attack]
        lines.append(
            f"  {result.attack:<28} {'PENETRATED' if result.succeeded else 'held':>10} "
            f"{'PENETRATED' if twin.succeeded else 'held':>11}"
        )
    lines.append(
        f"  totals                        {legacy.successes:>7}/{legacy.attempted}"
        f" {kernel.successes:>9}/{kernel.attempted}"
    )
    report("E11", lines)
