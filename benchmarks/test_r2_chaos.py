"""R2 — chaos storm: the degradation invariant under rolling faults.

R1 proves containment one hand-placed fault plan at a time; R2 proves
it under a *rolling storm*: a multi-host topology with plan-driven
link noise, a scenario engine commanding partitions, flaps, latency
spikes and a mid-burst CPU loss, all while an 8-job SMP workload and
cross-host traffic are in flight.  The paper's claim, asserted end to
end: every failure is denial of use —

* completed work matches the fault-free golden run (zero wrong data);
* every message that arrives is one that was sent, intact (loss is
  total, never corrupting);
* every injected fault is booked in the audit trail (nothing vanishes
  silently) and Eve's probes stay denied throughout;
* two same-seed storms produce byte-identical audit and metrics
  exports (the storm is part of the deterministic state);
* after the storm the system can crash, salvage, and report a clean
  hierarchy.
"""

import json
import time

from repro.errors import AccessDenied, KernelDenial
from repro.faults.harness import (
    crash,
    harness_config,
    hierarchy_violations,
    security_decisions,
    vandalize,
)
from repro.faults.plan import FaultPlan, FaultSpec
from repro.faults.salvager import MAGIC_CLEAN, read_marker
from repro.system import MulticsSystem

from conftest import fmt_row
from test_e17_smp import N_JOBS, PARALLEL_FRAMES, _prepare

SEED = 23

TOPOLOGY = {
    "hosts": ["east", "west", "relay"],
    "links": [
        {"name": "east_up", "a": "east", "b": "multics"},
        {"name": "west_relay", "a": "west", "b": "relay"},
        {"name": "relay_up", "a": "relay", "b": "multics"},
    ],
}

#: Plan-driven background noise on every link, under the storm.
LINK_NOISE = [
    FaultSpec("link.*", "drop", rate=0.04),
    FaultSpec("link.east_up", "latency_spike", rate=0.08),
]

#: The rolling storm: a storyboard (partition, then CPU loss), random
#: link faults, and a targeted controller chasing the busiest link.
STORM = {
    "name": "r2-rolling-storm",
    "controllers": [
        {"type": "timed", "events": [
            {"at": 800, "site": "link.east_up", "kind": "partition"},
            {"at": 2400, "site": "cpu.loss", "kind": "offline", "cpu": 1},
        ]},
        {"type": "random", "every": 700,
         "sites": ["link.east_up", "link.west_relay", "link.relay_up"],
         "kinds": ["drop", "flap", "latency_spike"]},
        {"type": "targeted", "every": 1100, "kind": "flap"},
    ],
}

HOSTS = ("east", "west")


def storm_run(storm: bool, seed: int = SEED, salvage: bool = False) -> dict:
    """One full run; ``storm=False`` is the fault-free golden run."""
    config = harness_config(
        topology=TOPOLOGY,
        fault_plan=FaultPlan(LINK_NOISE, seed=seed) if storm else None,
        **PARALLEL_FRAMES,
    )
    system = MulticsSystem(config).boot()
    system.register_user("Alice", "Crypto", "alice-pw")
    system.register_user("Eve", "Spies", "eve-pw")
    jobs, _sessions = _prepare(system)
    cx = system.cpu_complex(n_cpus=2)
    engine = (
        system.chaos_engine(dict(STORM, seed=seed), complex_=cx)
        if storm else None
    )
    sent: list[str] = []
    rounds = [0]

    def on_round(_cx):
        # The round's traffic goes out first, then the storm turns —
        # so messages race real outage windows instead of always
        # walking into a link the controller just downed.
        rounds[0] += 1
        host = HOSTS[rounds[0] % len(HOSTS)]
        body = f"r2 {host} {rounds[0]}"
        sent.append(body)
        system.topology.send(host, body)
        if engine is not None:
            engine.step()
        # Drain deliveries the lockstep clock has already passed.
        system.run(until=system.clock.now)

    cx.run_jobs(jobs, on_round=on_round)
    system.run()  # quiesce: late deliveries, interrupts
    received = []
    while (message := system.services.network.receive()) is not None:
        received.append(message.body)

    # Eve probes Alice's job data mid-aftermath: denial, storm or calm.
    eve = system.login("Eve", "Spies", "eve-pw")
    probes_denied = 0
    for path in (">udd>Crypto>Alice>data0", ">udd>Crypto>Alice>sum3"):
        try:
            eve.initiate(path)
        except (AccessDenied, KernelDenial):
            probes_denied += 1
    eve.logout()
    eve_grants = [
        d for d in security_decisions(system.services.audit)
        if d[0].startswith("Eve") and d[3] == "granted" and "Alice" in d[1]
    ]

    injector = system.services.injector
    out = {
        "results": [job.result for job in jobs],
        "errors": [job.error for job in jobs if job.error is not None],
        "sent": sent,
        "received": received,
        "probes_denied": probes_denied,
        "eve_grants": len(eve_grants),
        "injected": injector.injected_count if injector else 0,
        "chaos_events": list(engine.applied) if engine else [],
        "chaos_skipped": list(engine.skipped) if engine else [],
        "cpus_lost": cx.cpus_lost,
        "jobs_requeued": cx.jobs_requeued,
        "online_cpus": cx.online_count(),
        "elapsed": system.clock.now,
        "link_report": system.topology.link_report(),
        "lost_messages": system.topology.lost,
        "audit_json": system.audit_trail.to_json(),
        "metrics_json": system.metrics.to_json(),
        "audit_injected": sum(
            1 for r in system.audit_trail.records()
            if r.decision == "injected"
        ),
    }
    if salvage:
        # The aftermath: crash where the storm left us, vandalize the
        # hierarchy, reboot — the salvager must report clean.
        crash(system)
        damage = vandalize(system.services, seed=seed)
        rebooted = MulticsSystem(services=system.services).boot()
        report = rebooted.salvage_report
        assert report is not None, "unclean marker must trigger salvage"
        out["salvage_damage"] = len(damage)
        out["salvage_handled"] = report.damage_found
        out["violations_after"] = hierarchy_violations(rebooted.services)
        rebooted.shutdown()
        out["clean_marker"] = read_marker(rebooted.services) == MAGIC_CLEAN
    return out


def check_invariants(run: dict, golden: dict) -> None:
    """The degradation invariant, asserted against the golden run."""
    # Completed work is *right*, not merely finished: same results as
    # the fault-free run, no job died, every CPU loss only cost time.
    assert run["results"] == golden["results"] == [96] * N_JOBS
    assert run["errors"] == []
    # Message loss is total, never corrupting: everything received was
    # sent, byte for byte; losses are accounted, not silent.
    assert set(run["received"]) <= set(run["sent"])
    assert len(run["received"]) == len(run["sent"]) - run["lost_messages"]
    # The storm really stormed, and every injected fault is in the
    # audit trail — the failure story is complete.
    assert run["injected"] >= 1
    assert run["chaos_events"]
    assert run["audit_injected"] == run["injected"]
    assert run["cpus_lost"] == 1 and run["online_cpus"] == 1
    # The CPU loss displaced a running job; it restarted and finished.
    assert run["jobs_requeued"] == 1
    # Some traffic survived the storm — degraded, not dead.
    assert run["received"]
    # Security never wavers: probes denied, zero Eve grants.
    assert run["probes_denied"] == golden["probes_denied"] == 2
    assert run["eve_grants"] == golden["eve_grants"] == 0


def test_r2_chaos(benchmark, report, export):
    t0 = time.perf_counter()
    golden = storm_run(storm=False)
    first = storm_run(storm=True, salvage=True)
    second = storm_run(storm=True)

    # Fault-free topology delivers everything.
    assert golden["received"] and golden["lost_messages"] == 0
    assert set(golden["received"]) == set(golden["sent"])

    check_invariants(first, golden)

    # Same seed, same scenario: the whole storm replays byte-for-byte.
    assert first["audit_json"] == second["audit_json"]
    assert first["metrics_json"] == second["metrics_json"]
    assert first["elapsed"] == second["elapsed"]

    # The aftermath salvages clean.
    assert first["violations_after"] == []
    assert first["clean_marker"] is True

    benchmark(lambda: storm_run(storm=True))
    wall = time.perf_counter() - t0

    delivered = len(first["received"])
    export("R2", json.loads(first["metrics_json"]), extra={
        "seed": SEED,
        "jobs": N_JOBS,
        "golden_elapsed": golden["elapsed"],
        "storm_elapsed": first["elapsed"],
        "chaos_events": len(first["chaos_events"]),
        "chaos_skipped": len(first["chaos_skipped"]),
        "faults_injected": first["injected"],
        "audit_injected_records": first["audit_injected"],
        "cpus_lost": first["cpus_lost"],
        "jobs_requeued": first["jobs_requeued"],
        "messages_sent": len(first["sent"]),
        "messages_delivered": delivered,
        "messages_lost": first["lost_messages"],
        "link_report": first["link_report"],
        "probes_denied": first["probes_denied"],
        "eve_grants": first["eve_grants"],
        "salvage_damage": first["salvage_damage"],
        "salvage_handled": first["salvage_handled"],
        "violations_after": len(first["violations_after"]),
        "clean_marker": first["clean_marker"],
        "deterministic_replay": first["audit_json"] == second["audit_json"],
        "wall_seconds": round(wall, 4),
    })
    report("R2", [
        "R2: chaos storm (rolling link faults + CPU loss; denial of use",
        "    is the only failure mode)",
        fmt_row("chaos events / faults injected",
                len(first["chaos_events"]), first["injected"]),
        fmt_row("jobs completed right (of 8, vs golden)",
                sum(1 for r in first["results"] if r == 96)),
        fmt_row("CPUs lost / jobs requeued",
                first["cpus_lost"], first["jobs_requeued"]),
        fmt_row("messages sent / delivered / lost",
                len(first["sent"]), delivered, first["lost_messages"]),
        fmt_row("Eve probes denied / grants",
                first["probes_denied"], first["eve_grants"]),
        fmt_row("salvage: damage handled / violations after",
                first["salvage_handled"], len(first["violations_after"])),
        fmt_row("same-seed replay byte-identical",
                first["audit_json"] == second["audit_json"]),
    ])


def bench_numbers() -> tuple[dict, dict]:
    """(derived numbers, metrics snapshot) for scripts/run_benches.py."""
    t0 = time.perf_counter()
    golden = storm_run(storm=False)
    first = storm_run(storm=True, salvage=True)
    second = storm_run(storm=True)
    check_invariants(first, golden)
    derived = {
        "wall_seconds": round(time.perf_counter() - t0, 4),
        "seed": SEED,
        "jobs": N_JOBS,
        "golden_elapsed": golden["elapsed"],
        "storm_elapsed": first["elapsed"],
        "chaos_events": len(first["chaos_events"]),
        "faults_injected": first["injected"],
        "cpus_lost": first["cpus_lost"],
        "jobs_requeued": first["jobs_requeued"],
        "messages_sent": len(first["sent"]),
        "messages_delivered": len(first["received"]),
        "messages_lost": first["lost_messages"],
        "probes_denied": first["probes_denied"],
        "eve_grants": first["eve_grants"],
        "salvage_clean": first["violations_after"] == []
        and first["clean_marker"],
        "deterministic_replay": first["audit_json"] == second["audit_json"]
        and first["metrics_json"] == second["metrics_json"],
    }
    return derived, json.loads(first["metrics_json"])
