"""E16 — metering & audit: every simulated cycle the system charges is
attributed to a process, metering itself is free in simulated time, and
every reference-monitor denial raised by the penetration workload
appears in the exported audit trail.

Measured: attribution coverage (attributed/total cycles) on a combined
workload exercising all four charging sites (scheduler charges, gate
costs, CPU execution, page-fault waits); simulated-clock identity with
metering on vs off; deny-completeness of the bounded trail against the
kernel's unbounded log under the E11 attack suite.
"""

import json

from repro import MulticsSystem
from repro.faults.harness import harness_config, standard_workload
from repro.hw.cpu import Instruction as I, Op
from repro.proc.ipc import Charge
from repro.proc.process import Process
from repro.security.flaws import run_penetration_suite
from repro.user.object_format import ObjectSegment

COVERAGE_FLOOR = 0.95

SUMMER = ObjectSegment(
    "summer",
    code=[
        I(Op.PUSHI, 0), I(Op.STOREF, 0),
        I(Op.PUSHI, 0), I(Op.STOREF, 1),
        I(Op.LOADF, 1), I(Op.PUSHI, 32), I(Op.LT), I(Op.JZ, 18),
        I(Op.LOADF, 0), I(Op.LOADF, 1), I(Op.LOADI, 0),   # segno patched
        I(Op.ADD), I(Op.STOREF, 0),
        I(Op.LOADF, 1), I(Op.PUSHI, 1), I(Op.ADD), I(Op.STOREF, 1),
        I(Op.JMP, 4),
        I(Op.LOADF, 0), I(Op.RET),
    ],
    definitions={"main": 0},
)


def combined_workload(metering: bool = True) -> MulticsSystem:
    """Exercise all four charging sites on one booted kernel system."""
    config = harness_config()
    config.metering = metering
    system = MulticsSystem(config).boot()
    system.register_user("Alice", "Crypto", "alice-pw")
    system.register_user("Eve", "Spies", "eve-pw")

    # Gate costs + reference-monitor traffic (with denial probes).
    standard_workload(system, tag="e16")
    # The E11 attack suite: every denial must reach the trail.
    run_penetration_suite(system)

    # Scheduler charges + discrete-event page-fault waits.
    alice = system.login("Alice", "Crypto", "alice-pw")
    services = system.services
    segno = alice.create_segment("stormpages", n_pages=6)
    aseg = services.ast.get(alice.process.dseg.get(segno).uid)
    pc = services.page_control

    def worker(proc):
        for _sweep in range(2):
            for page in range(6):
                yield from pc.touch(proc, aseg, page)
                yield Charge(40)

    for i in range(3):
        system.add_process(Process(f"w{i}", body=worker, ring=4))
    system.run()

    # CPU execution (instruction, translation, and call cycles).
    data_segno = alice.create_segment("bigdata", n_pages=4)
    alice.write_words(data_segno, [3] * 32)
    program = ObjectSegment(
        SUMMER.name,
        code=[
            I(Op.LOADI, data_segno) if inst.op is Op.LOADI else inst
            for inst in SUMMER.code
        ],
        definitions=dict(SUMMER.definitions),
    )
    prog_segno = alice.install_object("summer", program)
    assert alice.run_program(prog_segno) == 96
    return system


def test_e16_metering_and_audit(benchmark, report, export):
    system = benchmark(combined_workload)
    meters = system.meters

    # (a) attribution coverage: >= 95% of all charged cycles land in
    # some process bucket (the wiring is complete, so it is 100%).
    coverage = meters.coverage()
    total = meters.total_cycles()
    assert total > 0
    assert coverage >= COVERAGE_FLOOR

    # (b) metering is free in simulated time: the identical workload
    # with the plane disabled reaches the identical simulated clock.
    unmetered = combined_workload(metering=False)
    assert unmetered.clock.now == system.clock.now
    assert unmetered.meters.enabled is False

    # (c) audit completeness: every deny the kernel's unbounded log
    # recorded has a matching record in the exported bounded trail.
    log_denied = [r for r in system.audit.records if r.outcome != "granted"]
    trail_doc = json.loads(system.audit_trail.to_json())
    trail_denied = [r for r in trail_doc["records"]
                    if r["decision"] != "granted"]
    assert len(log_denied) > 0
    assert trail_doc["dropped"] == 0
    assert len(trail_denied) == len(log_denied)
    matched = sum(
        1 for lr, tr in zip(log_denied, trail_denied)
        if (lr.time, lr.subject, lr.object, lr.outcome)
        == (tr["time"], tr["principal"], tr["object"], tr["decision"])
    )
    assert matched == len(log_denied)

    snapshot = system.metrics.snapshot()
    export("E16", snapshot, extra={
        "coverage": round(coverage, 4),
        "attributed_cycles": meters.attributed_cycles(),
        "total_cycles": total,
        "simulated_clock_metered": system.clock.now,
        "simulated_clock_unmetered": unmetered.clock.now,
        "log_denials": len(log_denied),
        "trail_denials": len(trail_denied),
        "trail_dropped": trail_doc["dropped"],
    })
    report("E16", [
        "E16: metering & audit (every charged cycle attributed; metering",
        "     free in simulated time; every deny reaches the trail)",
        f"  attribution coverage: {coverage:.2%} "
        f"({meters.attributed_cycles()}/{total} cycles; floor "
        f"{COVERAGE_FLOOR:.0%})",
        f"  simulated clock metered/unmetered: {system.clock.now}/"
        f"{unmetered.clock.now} (identical)",
        f"  denies in log / trail: {len(log_denied)}/{len(trail_denied)} "
        f"(matched {matched}, dropped {trail_doc['dropped']})",
    ])
