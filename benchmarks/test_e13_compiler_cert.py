"""E13 — footnote 6: certify the compiler's effect per kernel module,
"a task much simpler than certifying the compiler correct for all
possible source programs."

Measured: certification of three kernel-language modules (structural
check + differential execution against the source model), and the
certifier catching a tampered object.
"""

import pytest

from repro.errors import CertificationError
from repro.hw.cpu import Instruction, Op
from repro.lang.certifier import certify_module
from repro.lang.compiler import compile_source

MODULES = {
    "page_select": (
        """
        procedure score(used, modified, age);
          declare s;
          s = age;
          if used > 0 then s = s / 2; end;
          if modified > 0 then s = s - 1; end;
          return s;
        end;

        procedure better(a_used, a_mod, a_age, b_used, b_mod, b_age);
          if score(a_used, a_mod, a_age) >= score(b_used, b_mod, b_age) then
            return 1;
          end;
          return 0;
        end;
        """,
        {
            "score": [[0, 0, 10], [1, 0, 10], [1, 1, 9], [0, 1, 3]],
            "better": [[0, 0, 10, 1, 0, 10], [1, 1, 2, 0, 0, 8]],
        },
    ),
    "quota_check": (
        """
        procedure fits(used, requested, quota);
          if used + requested <= quota then
            return 1;
          end;
          return 0;
        end;
        """,
        {"fits": [[10, 5, 16], [10, 7, 16], [0, 0, 0], [1, 0, 1]]},
    ),
    "ring_rules": (
        """
        procedure may_write(ring, r1);
          if ring <= r1 then return 1; end;
          return 0;
        end;

        procedure target_ring(ring, r1, r2, r3);
          if ring < r1 then return r1; end;
          if ring <= r2 then return ring; end;
          if ring <= r3 then return r2; end;
          return -1;
        end;
        """,
        {
            "may_write": [[0, 0], [1, 0], [4, 4]],
            "target_ring": [[4, 0, 0, 7], [3, 1, 4, 6], [0, 2, 4, 6], [7, 0, 0, 5]],
        },
    ),
}


def certify_all():
    reports = {}
    for module, (source, vectors) in MODULES.items():
        reports[module] = certify_module(source, module, vectors)
    return reports


def test_e13_per_module_certification(benchmark, report):
    reports = benchmark(certify_all)
    assert all(r.certified for r in reports.values())

    # The certifier catches a tampered object.
    source, vectors = MODULES["quota_check"]
    tampered = compile_source(source, "quota_check")
    for i, inst in enumerate(tampered.code):
        if inst.op is Op.LE:
            tampered.code[i] = Instruction(Op.LT)  # off-by-one backdoor
            break
    with pytest.raises(CertificationError):
        certify_module(source, "quota_check", vectors, obj=tampered)

    lines = [
        "E13: per-module compiler certification (paper footnote 6: compare",
        "     source model with object code, per kernel module)",
        "  module          procedures  vectors  certified",
    ]
    for module, r in reports.items():
        lines.append(
            f"  {module:<15} {len(r.procedures_checked):>9} "
            f"{r.vectors_run:>8} {'yes' if r.certified else 'NO':>9}"
        )
    lines.append("  tampered object (LE -> LT backdoor) detected: yes")
    report("E13", lines)
