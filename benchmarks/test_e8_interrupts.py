"""E8 — interrupt handling: "Each interrupt handler will be assigned
its own process in which to execute, rather than being forced to
inhabit whatever user process was running when the interrupt occurred
... the interrupt handlers can use the normal system interprocess
communication mechanisms ... greatly simplifying their structure."

Measured, under an identical interrupt storm: cycles stolen from
innocent user processes, cycles spent with interrupts masked, and
whether handlers can use ordinary IPC (block) at all.
"""

from repro.config import CostModel, SystemConfig
from repro.hw.clock import Simulator
from repro.hw.interrupts import InterruptController
from repro.proc.interrupt_procs import DedicatedProcessDispatch, InProcessDispatch
from repro.proc.ipc import Charge
from repro.proc.process import Process, ProcessState
from repro.proc.scheduler import TrafficController

HANDLER_WORK = 300
N_INTERRUPTS = 40


def run_storm(dedicated: bool):
    config = SystemConfig(
        page_size=16, core_frames=8, bulk_frames=32, disk_frames=256,
        n_processors=1, n_virtual_processors=8, quantum=100_000,
    )
    sim = Simulator()
    tc = TrafficController(sim, config)
    ic = InterruptController(sim.clock)
    dispatch_cls = DedicatedProcessDispatch if dedicated else InProcessDispatch
    dispatch = dispatch_cls(ic, tc, CostModel())
    handled = []

    def handler(payload):
        yield Charge(HANDLER_WORK)
        handled.append(payload)

    dispatch.register(1, handler)

    def victim_body(proc):
        for i in range(N_INTERRUPTS):
            yield Charge(50)
            ic.raise_line(1, i)
        # Let dedicated handlers drain.
        yield Charge(10)

    victim = Process("victim", body=victim_body)
    tc.add_process(victim)
    tc.run(max_events=1_000_000)
    assert victim.state is ProcessState.STOPPED
    return {
        "handled": len(handled),
        "stolen": dispatch.stolen_cycles,
        "masked": ic.masked_cycles,
        "victim_cycles": victim.cpu_cycles,
    }


def test_e8_interrupt_handling(benchmark, report):
    old = run_storm(dedicated=False)
    new = benchmark(run_storm, True)

    assert old["handled"] == new["handled"] == N_INTERRUPTS
    # The old design steals the whole handler body from the victim and
    # runs it masked; the new design steals only the wakeup conversion.
    assert old["stolen"] >= N_INTERRUPTS * HANDLER_WORK
    assert new["stolen"] == N_INTERRUPTS * CostModel().interrupt_to_wakeup
    assert old["masked"] >= N_INTERRUPTS * HANDLER_WORK
    assert new["masked"] == 0

    report("E8", [
        "E8: interrupt handling (paper: dedicated handler processes vs",
        "    inhabiting whatever process was running)",
        "                                    in-process    dedicated",
        f"  interrupts handled             {old['handled']:>12} {new['handled']:>12}",
        f"  cycles stolen from victims     {old['stolen']:>12} {new['stolen']:>12}",
        f"  cycles spent masked            {old['masked']:>12} {new['masked']:>12}",
        f"  victim cpu charged             {old['victim_cycles']:>12} {new['victim_cycles']:>12}",
        "  handlers may block/use IPC               no          yes",
    ])
