"""E17 — symmetric multiprocessing: the 6180 ran Multics on multiple
identical processors sharing one memory, with the kernel's shared
tables guarded by a handful of global locks (the traffic-control lock
lowest).  The simulator's SMP complex reproduces that structure in
deterministic lockstep.

Measured: simulated-cycle throughput of an embarrassingly parallel
8-job workload at 1 vs 2 CPUs (claim: >= 1.8x); clock identity of the
1-CPU complex with the pre-SMP synchronous execution path; graceful
degradation under a fault-heavy (thrashing) workload where CPUs
serialize on the page-table lock; and byte-identical metrics snapshots
across two same-seed runs (determinism is what makes the other three
numbers citable).
"""

import json
import time

from repro import MulticsSystem
from repro.faults.harness import harness_config
from repro.hw.cpu import Instruction as I, Op
from repro.user.object_format import ObjectSegment

SPEEDUP_FLOOR = 1.8
N_JOBS = 8

SUMMER = ObjectSegment(
    "summer",
    code=[
        I(Op.PUSHI, 0), I(Op.STOREF, 0),
        I(Op.PUSHI, 0), I(Op.STOREF, 1),
        I(Op.LOADF, 1), I(Op.PUSHI, 32), I(Op.LT), I(Op.JZ, 18),
        I(Op.LOADF, 0), I(Op.LOADF, 1), I(Op.LOADI, 0),   # segno patched
        I(Op.ADD), I(Op.STOREF, 0),
        I(Op.LOADF, 1), I(Op.PUSHI, 1), I(Op.ADD), I(Op.STOREF, 1),
        I(Op.JMP, 4),
        I(Op.LOADF, 0), I(Op.RET),
    ],
    definitions={"main": 0},
)

#: Core sized so the 8-job workload runs fault-free (the parallel leg)
#: or thrashes on every sweep (the contention leg).
PARALLEL_FRAMES = dict(core_frames=256, bulk_frames=512, disk_frames=2048)
THRASH_FRAMES = dict(core_frames=8, bulk_frames=32, disk_frames=256)


def _boot(frames: dict) -> MulticsSystem:
    system = MulticsSystem(harness_config(**frames)).boot()
    system.register_user("Alice", "Crypto", "alice-pw")
    return system


def _prepare(system: MulticsSystem, n_jobs: int = N_JOBS):
    """One SUMMER job per fresh login session (fresh process, fresh
    descriptor segment — so per-CPU AMs cam between jobs)."""
    jobs, sessions = [], []
    for i in range(n_jobs):
        session = system.login("Alice", "Crypto", "alice-pw")
        data = session.create_segment(f"data{i}", n_pages=2)
        session.write_words(data, [3] * 32)
        program = ObjectSegment(
            SUMMER.name,
            code=[
                I(Op.LOADI, data) if inst.op is Op.LOADI else inst
                for inst in SUMMER.code
            ],
            definitions=dict(SUMMER.definitions),
        )
        segno = session.install_object(f"sum{i}", program)
        jobs.append(session.program_job(segno, label=f"job{i}"))
        sessions.append((session, segno))
    return jobs, sessions


def smp_run(n_cpus: int, frames: dict | None = None) -> dict:
    """Boot, run the workload on an n-CPU complex, return the numbers."""
    system = _boot(frames or PARALLEL_FRAMES)
    jobs, _ = _prepare(system)
    complex_ = system.cpu_complex(n_cpus=n_cpus)
    before = system.clock.now
    complex_.run_jobs(jobs)
    locks = system.services.locks
    return {
        "system": system,
        # Snapshot *now*: cam broadcasts are system-wide (any AM still
        # alive hears them), so a later boot in the same process would
        # bump this system's am.invalidations.
        "snapshot_json": system.metrics.to_json(),
        "complex": complex_,
        "jobs": jobs,
        "elapsed": system.clock.now - before,
        "busy": complex_.busy_cycles,
        "stall": complex_.stall_cycles,
        "rounds": complex_.rounds,
        "ptl_contentions": locks.ptl.contentions,
        "ptl_contention_cycles": locks.ptl.contention_cycles,
        "results": [job.result for job in jobs],
    }


def serial_cycles() -> int:
    """The pre-SMP execution path: each job on a fresh synchronous CPU
    (exactly what ``Session.run_program`` does), cycles summed."""
    system = _boot(PARALLEL_FRAMES)
    _, sessions = _prepare(system)
    total = 0
    for session, segno in sessions:
        session.load_program(segno)
        code = session.process.code_segments[segno]
        cpu = session.make_cpu()
        assert cpu.execute(session.process, segno,
                           code.entry_points["main"]) == 96
        total += cpu.cycles
    return total


def test_e17_smp(benchmark, report, export):
    t0 = time.perf_counter()
    two = benchmark(lambda: smp_run(2))
    one = smp_run(1)

    # (a) throughput: two CPUs on embarrassingly parallel work.
    assert one["results"] == [96] * N_JOBS
    assert two["results"] == [96] * N_JOBS
    speedup = one["elapsed"] / two["elapsed"]
    assert speedup >= SPEEDUP_FLOOR

    # (b) a 1-CPU complex is cycle-identical to the pre-SMP path.
    serial = serial_cycles()
    assert one["elapsed"] == serial
    assert one["stall"] == 0

    # (c) graceful degradation: the thrashing workload serializes on
    # the page-table lock — contention is visible, every job still
    # completes, and the second CPU never makes things slower.
    heavy_one = smp_run(1, frames=THRASH_FRAMES)
    heavy_two = smp_run(2, frames=THRASH_FRAMES)
    assert heavy_one["results"] == [96] * N_JOBS
    assert heavy_two["results"] == [96] * N_JOBS
    assert heavy_one["ptl_contentions"] == 0
    assert heavy_two["ptl_contentions"] > 0
    assert heavy_two["elapsed"] <= heavy_one["elapsed"]

    # (d) determinism: a second same-seed 2-CPU boot is byte-identical.
    replay = smp_run(2)
    assert replay["snapshot_json"] == two["snapshot_json"]
    assert replay["elapsed"] == two["elapsed"]
    wall = time.perf_counter() - t0

    snapshot = json.loads(two["snapshot_json"])
    export("E17", snapshot, extra={
        "jobs": N_JOBS,
        "elapsed_1cpu": one["elapsed"],
        "elapsed_2cpu": two["elapsed"],
        "speedup_2cpu": round(speedup, 3),
        "serial_cycles": serial,
        "one_cpu_identity": one["elapsed"] == serial,
        "thrash_elapsed_1cpu": heavy_one["elapsed"],
        "thrash_elapsed_2cpu": heavy_two["elapsed"],
        "thrash_ptl_contentions": heavy_two["ptl_contentions"],
        "thrash_ptl_contention_cycles": heavy_two["ptl_contention_cycles"],
        "thrash_stall_cycles_2cpu": heavy_two["stall"],
        "deterministic_replay": True,
        "wall_seconds": round(wall, 4),
    })
    report("E17", [
        "E17: SMP (deterministic lockstep; kernel tables behind global",
        "     locks, per-CPU associative memories)",
        f"  parallel speedup at 2 CPUs: {speedup:.2f}x "
        f"({one['elapsed']} -> {two['elapsed']} cycles; floor "
        f"{SPEEDUP_FLOOR}x)",
        f"  1-CPU complex vs pre-SMP path: {one['elapsed']} == {serial} "
        "cycles (identical)",
        f"  thrashing workload: ptl contentions "
        f"{heavy_two['ptl_contentions']} "
        f"({heavy_two['ptl_contention_cycles']} cycles waited), "
        f"elapsed {heavy_one['elapsed']} -> {heavy_two['elapsed']}",
        "  same-seed replay: byte-identical metrics snapshot",
    ])


def bench_numbers() -> tuple[dict, dict]:
    """(derived numbers, metrics snapshot) for scripts/run_benches.py."""
    t0 = time.perf_counter()
    one = smp_run(1)
    two = smp_run(2)
    serial = serial_cycles()
    heavy_two = smp_run(2, frames=THRASH_FRAMES)
    replay = smp_run(2)
    derived = {
        "wall_seconds": round(time.perf_counter() - t0, 4),
        "jobs": N_JOBS,
        "elapsed_1cpu": one["elapsed"],
        "elapsed_2cpu": two["elapsed"],
        "speedup_2cpu": round(one["elapsed"] / two["elapsed"], 3),
        "serial_cycles": serial,
        "one_cpu_identity": one["elapsed"] == serial,
        "thrash_ptl_contentions": heavy_two["ptl_contentions"],
        "thrash_stall_cycles_2cpu": heavy_two["stall"],
        "deterministic_replay":
            replay["snapshot_json"] == two["snapshot_json"],
    }
    return derived, json.loads(two["snapshot_json"])
