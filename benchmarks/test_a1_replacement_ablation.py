"""Ablation A1 — replacement policy choice inside page control.

DESIGN.md's page-control design leaves the victim-selection policy
pluggable (FIFO / clock / LRU).  This ablation measures what the choice
costs on two canonical access patterns: a cyclic sweep (FIFO-hostile)
and a skewed hot/cold set (recency-friendly).
"""

from repro.config import PageControlKind, SystemConfig
from repro.hw.clock import Simulator
from repro.hw.memory import MemoryHierarchy
from repro.proc.process import Process, ProcessState
from repro.proc.scheduler import TrafficController
from repro.vm.page_control import make_page_control
from repro.vm.replacement import make_policy
from repro.vm.segment_control import ActiveSegmentTable


def run_pattern(policy_name: str, pattern: str):
    config = SystemConfig(
        page_size=16, core_frames=8, bulk_frames=32, disk_frames=512,
        n_processors=1, n_virtual_processors=6, quantum=10_000,
    )
    sim = Simulator()
    tc = TrafficController(sim, config)
    hierarchy = MemoryHierarchy(config)
    ast = ActiveSegmentTable(hierarchy)
    pc = make_page_control(
        PageControlKind.SEQUENTIAL, sim, tc, hierarchy, ast, config,
        policy=make_policy(policy_name),
    )
    seg = ast.activate(uid=1, n_pages=12)

    def sweep(proc):
        for _round in range(4):
            for page in range(seg.n_pages):
                yield from pc.touch(proc, seg, page)

    def hot_cold(proc):
        # 4 hot pages touched constantly; a rotating cold set larger
        # than the remaining core frames forces evictions, so the
        # policy decides whether the hot set survives.
        schedule = []
        for round_no in range(16):
            schedule.extend([0, 1, 2, 3] * 3)
            schedule.append(4 + round_no % 8)
        for page in schedule:
            yield from pc.touch(proc, seg, page)

    body = sweep if pattern == "sweep" else hot_cold
    worker = Process("w", body=body)
    tc.add_process(worker)
    tc.run(max_events=1_000_000)
    assert worker.state is ProcessState.STOPPED
    return pc.faults_serviced


def test_a1_replacement_policy_ablation(benchmark, report):
    results = {
        policy: {
            pattern: run_pattern(policy, pattern)
            for pattern in ("sweep", "hot_cold")
        }
        for policy in ("fifo", "clock", "lru")
    }
    benchmark(run_pattern, "clock", "hot_cold")

    # Recency-aware policies must beat (or tie) FIFO on the hot/cold
    # set: the design reason clock is the default.
    assert results["clock"]["hot_cold"] <= results["fifo"]["hot_cold"]
    assert results["lru"]["hot_cold"] <= results["fifo"]["hot_cold"]

    lines = [
        "A1 (ablation): replacement policy choice, faults serviced",
        "  policy     cyclic-sweep   hot/cold",
    ]
    for policy, row in results.items():
        lines.append(
            f"  {policy:<9} {row['sweep']:>12} {row['hot_cold']:>10}"
        )
    report("A1", lines)
