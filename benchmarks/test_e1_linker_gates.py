"""E1 — "the linker's removal eliminated 10% of the gate entry points
into the supervisor."

Measured: the linker gate family's share of the legacy supervisor's
user-available perimeter, from the live gate table.
"""

from repro.kernel.kernel import build_kernel
from repro.kernel.legacy import build_legacy
from repro.kernel.metrics import gate_census, linker_removal


def test_e1_linker_share_of_gates(benchmark, report):
    legacy = benchmark(build_legacy)
    comparison = linker_removal(legacy)
    census = gate_census(legacy)

    assert comparison.removed == 10
    assert 0.08 <= comparison.fraction_removed <= 0.14

    report("E1", [
        "E1: linker removal (paper: eliminated 10% of gate entry points)",
        f"  legacy user-available gates            {comparison.before:>6}",
        f"  linker gates removed                   {comparison.removed:>6}",
        f"  measured fraction                      {comparison.fraction_removed:>6.1%}",
        "  paper claim                               10%",
        f"  perimeter after linker removal        {comparison.after:>6}",
        f"  by category: {census.by_category}",
    ])
