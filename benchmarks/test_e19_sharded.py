"""E19 — shard-parallel workload execution: past one Python process's
ceiling, the population partitions by user UID across N OS-process
shards (:func:`repro.workloads.run_sharded`), each an independent
deterministically seeded system + driver, merged back into one global
report whose bytes are independent of worker scheduling order.

Measured: admitted users/sec at 1, 2, and 4 shards, plus a 100k-user
end-to-end leg — ten times E18's ceiling.  Guarded by three identity
legs that make the throughput claim citable:

* 1 shard in-process equals the unsharded ``WorkloadDriver`` exactly
  (same report numbers, same ``repro.obs/v1`` snapshot);
* same seed + same shard count → byte-identical canonical documents
  across repeat runs;
* the serial fallback (``mode="serial"``) produces the same bytes as
  the process pool — losing ``multiprocessing`` degrades speed only.

The >= 1.8x speedup floor at 2 shards applies on hosts with >= 2 cores
(OS processes cannot beat the core count); single-core hosts export
their honest numbers with ``speedup_asserted: false``.
"""

import json
import os
import time

from repro import MulticsSystem, kernel_config
from repro.workloads import WorkloadDriver, generate_population, run_sharded

SPEEDUP_FLOOR_2SHARD = 1.8
SEED = 1975
N_CPUS = 2
USERS_EQUIV = 600
USERS_SCALE = 10_000
USERS_SCALE_QUICK = 1_000
USERS_100K = 100_000
SHARDS_100K = 4

#: Same memory hierarchy as E18, so per-shard behaviour matches the
#: single-process engine the equivalence leg compares against.
FRAMES = dict(page_size=16, core_frames=16384, bulk_frames=32768,
              disk_frames=65536)


def _config():
    return kernel_config(fast_path=True, **FRAMES)


def sharded_run(n_users: int, n_shards: int, mode: str = "auto",
                seed: int = SEED):
    return run_sharded(n_users, n_shards, seed, _config(),
                       mode=mode, n_cpus=N_CPUS)


def one_shard_equivalent(n_users: int, seed: int = SEED) -> bool:
    """1-shard-in-process vs the plain driver: same computation."""
    system = MulticsSystem(_config()).boot()
    direct = WorkloadDriver(system, n_cpus=N_CPUS).run(
        generate_population(n_users, seed=seed)
    )
    direct_snapshot = system.metrics.snapshot()
    sharded = sharded_run(n_users, 1)
    merged = sharded.report
    return (
        sharded.mode == "serial"
        and merged.users == direct.users
        and merged.admitted == direct.admitted
        and merged.login_failures == direct.login_failures
        and merged.jobs_completed == direct.jobs_completed
        and merged.jobs_failed == direct.jobs_failed
        and merged.start_clock == direct.start_clock
        and merged.end_clock == direct.end_clock
        and merged.latencies == direct.latencies
        and sharded.shards[0].snapshot == direct_snapshot
    )


def test_e19_sharded(report, export):
    t0 = time.perf_counter()
    cores = os.cpu_count() or 1

    # (a) 1 shard in-process == the unsharded driver, exactly.
    assert one_shard_equivalent(USERS_EQUIV)

    # (b) scaling legs at a bench-sized population; every user admitted
    # and completed at every shard count.
    n = 1_200
    runs = {k: sharded_run(n, k) for k in (1, 2)}
    for run in runs.values():
        assert run.report.admitted == n
        assert run.report.jobs_completed == n
        assert run.report.jobs_failed == 0

    # (c) deterministic merge: repeat run and serial fallback are
    # byte-identical to the process-pool run.
    again = sharded_run(n, 2)
    serial = sharded_run(n, 2, mode="serial")
    assert serial.mode == "serial"
    assert runs[2].canonical_json() == again.canonical_json()
    assert runs[2].canonical_json() == serial.canonical_json()

    # (d) informational speedup at this bench-sized population; the
    # hard >= 1.8x floor is enforced by bench_numbers() at full scale,
    # where spawn/boot overhead stops dominating the measurement.
    speedup = (runs[2].users_per_sec / runs[1].users_per_sec
               if runs[1].users_per_sec else 0.0)

    wall = time.perf_counter() - t0
    export("E19", runs[2].snapshot, extra={
        "cores": cores,
        "scale_users": n,
        "users_per_sec_1shard": round(runs[1].users_per_sec, 2),
        "users_per_sec_2shard": round(runs[2].users_per_sec, 2),
        "speedup_2shard": round(speedup, 3),
        "speedup_asserted": cores >= 2,
        "one_shard_equivalent": True,
        "deterministic_merge": True,
        "serial_fallback_identical": True,
        "wall_seconds": round(wall, 4),
    })
    report("E19", [
        "E19: shard-parallel workload (UID partition, OS-process",
        "     shards, deterministic merge)",
        f"  2-shard speedup at {n} users: {speedup:.2f}x "
        f"(floor {SPEEDUP_FLOOR_2SHARD}x on >=2 cores; host has {cores})",
        "  1-shard == unsharded driver; process == serial bytes",
    ])


def bench_numbers(quick: bool = False) -> tuple[dict, dict]:
    """(derived numbers, merged snapshot) for scripts/run_benches.py.

    ``quick`` shrinks the scaling legs and skips the 100k-user leg so
    a local ``--quick`` run stays interactive.
    """
    t0 = time.perf_counter()
    cores = os.cpu_count() or 1
    scale = USERS_SCALE_QUICK if quick else USERS_SCALE

    equivalent = one_shard_equivalent(USERS_EQUIV)

    runs = {k: sharded_run(scale, k) for k in (1, 2, 4)}
    serial = sharded_run(scale, 2, mode="serial")
    deterministic = (
        runs[2].canonical_json() == serial.canonical_json()
        and runs[2].canonical_json() == sharded_run(scale, 2).canonical_json()
    )
    rate = {k: run.users_per_sec for k, run in runs.items()}
    speedup_2 = rate[2] / rate[1] if rate[1] else 0.0
    speedup_4 = rate[4] / rate[1] if rate[1] else 0.0

    derived = {
        "cores": cores,
        "scale_users": scale,
        "users_per_sec_1shard": round(rate[1], 2),
        "users_per_sec_2shard": round(rate[2], 2),
        "users_per_sec_4shard": round(rate[4], 2),
        "speedup_2shard": round(speedup_2, 3),
        "speedup_4shard": round(speedup_4, 3),
        "speedup_asserted": cores >= 2,
        "one_shard_equivalent": equivalent,
        "deterministic_merge": deterministic,
        "mode_2shard": runs[2].mode,
    }
    # The floor only binds at full scale on a host that can express
    # parallelism — quick runs are overhead-dominated by design.
    if not quick and cores >= 2 and speedup_2 < SPEEDUP_FLOOR_2SHARD:
        raise AssertionError(
            f"2 shards {speedup_2:.2f}x < {SPEEDUP_FLOOR_2SHARD}x floor "
            f"on {cores} cores"
        )
    if not equivalent:
        raise AssertionError("1-shard run diverged from the plain driver")

    snapshot = runs[4].snapshot
    if not quick:
        big = sharded_run(USERS_100K, SHARDS_100K)
        derived.update({
            "users_100k": USERS_100K,
            "shards_100k": SHARDS_100K,
            "admitted_100k": big.report.admitted,
            "jobs_completed_100k": big.report.jobs_completed,
            "jobs_failed_100k": big.report.jobs_failed,
            "users_per_sec_100k": round(big.users_per_sec, 2),
            "p50_latency_cycles_100k": big.report.p50_latency,
            "p95_latency_cycles_100k": big.report.p95_latency,
            "mode_100k": big.mode,
        })
        snapshot = big.snapshot
    derived["wall_seconds"] = round(time.perf_counter() - t0, 4)
    return derived, snapshot


def main():  # pragma: no cover - manual entry point
    derived, _ = bench_numbers(quick=True)
    print(json.dumps(derived, indent=2))


if __name__ == "__main__":  # pragma: no cover
    main()
