"""E15 — the 6180 associative memory: what makes checking *every*
reference affordable.

The paper's protection argument needs the hardware to evaluate SDW
access, ring brackets, bounds, and PTW residence on every single
reference.  The 6180 could afford that only because small associative
memories short-circuited the full descriptor walk for recently used
translations.  This bench measures the simulated AM (repro.hw.assoc)
three ways:

* **hit rate** on a locality workload (a loop re-referencing a small
  working set) — the cache must absorb >= 90% of the checks;
* **cost**: the same workload with the AM off must charge more
  simulated cycles *and* take more wall-clock time;
* **equivalence**: architectural results (values computed, values
  read, page faults serviced) must be identical with the AM on or off
  — the cache may change cost, never outcomes — including under
  memory pressure, where eviction-driven invalidation is what keeps
  the cache honest.
"""

import time

from repro import MulticsSystem, kernel_config
from repro.hw.cpu import Instruction as I, Op
from repro.obs import MetricsRegistry
from repro.user.object_format import ObjectSegment

#: Distinct data offsets the locality loop re-reads (spread over both
#: pages of the data segment) and how many times it loops over them.
ITERS = 150
WALL_REPEATS = 5


def _build(am_enabled: bool, **overrides):
    system = MulticsSystem(
        kernel_config(am_enabled=am_enabled, **overrides)
    ).boot()
    system.register_user("Alice", "Crypto", "pw")
    return system, system.login("Alice", "Crypto", "pw")


def _locality_program(data_segno: int, offsets: list[int],
                      iters: int) -> ObjectSegment:
    """Loop ``iters`` times reading each of ``offsets``; returns the
    word at ``offsets[0]``."""
    code = [I(Op.PUSHI, iters), I(Op.STOREF, 0)]
    loop = len(code)
    for off in offsets:
        code += [I(Op.LOAD, data_segno, off), I(Op.POP)]
    code += [
        I(Op.LOADF, 0), I(Op.PUSHI, 1), I(Op.SUB),
        I(Op.DUP), I(Op.STOREF, 0), I(Op.JNZ, loop),
    ]
    code += [I(Op.LOAD, data_segno, offsets[0]), I(Op.RET)]
    return ObjectSegment("locality", code=code, definitions={"main": 0})


def _locality_workload(am_enabled: bool):
    """The measured section: a CPU-driven locality loop plus a kernel
    word-I/O streaming pass over the same data."""
    system, session = _build(am_enabled)
    page_size = system.config.page_size
    data_segno = session.create_segment("data", n_pages=2)
    pattern = [(7 * i + 3) % 512 for i in range(2 * page_size)]
    session.write_words(data_segno, pattern)
    offsets = [(i * (2 * page_size)) // 8 for i in range(8)]
    prog_segno = session.install_object(
        "locality", _locality_program(data_segno, offsets, ITERS)
    )
    session.load_program(prog_segno)
    entry = session.process.code_segments[prog_segno].entry_points["main"]

    before = system.metrics.snapshot()
    best_wall = float("inf")
    first_cycles = None
    value = None
    io_words = None
    for _ in range(WALL_REPEATS):
        t0 = time.perf_counter()
        cpu = session.make_cpu()
        value = cpu.execute(session.process, prog_segno, entry)
        io_words = session.read_words(data_segno, 2 * page_size)
        best_wall = min(best_wall, time.perf_counter() - t0)
        if first_cycles is None:
            first_cycles = cpu.cycles
    delta = MetricsRegistry.delta(before, system.metrics.snapshot())

    hits = delta.get("am.hits", 0)
    misses = delta.get("am.misses", 0)
    return {
        "value": value,
        "io_words": io_words,
        "faults": delta["pc.faults_serviced"],
        "cycles": first_cycles,
        "wall": best_wall,
        "hits": hits,
        "misses": misses,
        "hit_rate": hits / (hits + misses) if hits + misses else 0.0,
        "system": system,
    }


def _paging_workload(am_enabled: bool):
    """Sweep a segment three times larger than core, three passes: the
    AM is useless here (every reference re-faults eventually) but must
    stay *correct* — eviction-driven invalidation, identical faults."""
    system, session = _build(
        am_enabled,
        core_frames=8, bulk_frames=16, disk_frames=512, page_size=16,
    )
    seg = session.create_segment("big", n_pages=24)
    n = 24 * 16
    session.write_words(seg, [(3 * i) % 128 for i in range(n)])
    passes = [session.read_words(seg, n) for _ in range(3)]
    snap = system.metrics.snapshot()
    return {
        "passes": passes,
        "faults": snap["counters"]["pc.faults_serviced"],
        "invalidations": snap["counters"]["am.invalidations"],
        "snapshot": snap,
    }


def test_e15_associative_memory(report, export):
    on = _locality_workload(am_enabled=True)
    off = _locality_workload(am_enabled=False)

    # Architectural equivalence: the cache changes cost, not outcomes.
    assert on["value"] == off["value"]
    assert on["io_words"] == off["io_words"]
    assert on["faults"] == off["faults"]

    # The cache absorbs the overwhelming majority of checks...
    assert on["hit_rate"] >= 0.90
    assert off["hits"] == 0  # the off configuration never consults it

    # ...and that is visible in both cost models.
    assert on["cycles"] < off["cycles"]
    assert on["wall"] < off["wall"]

    pag_on = _paging_workload(am_enabled=True)
    pag_off = _paging_workload(am_enabled=False)
    assert pag_on["passes"] == pag_off["passes"]
    assert pag_on["faults"] == pag_off["faults"]
    # Under pressure the correctness mechanism is invalidation: every
    # eviction cams the page's cached translations, everywhere.
    assert pag_on["invalidations"] > 0

    export("E15", on["system"].metrics.snapshot(), extra={
        "hit_rate": round(on["hit_rate"], 4),
        "am_hits": on["hits"],
        "am_misses": on["misses"],
        "cycles_am_on": on["cycles"],
        "cycles_am_off": off["cycles"],
        "wall_seconds_am_on": on["wall"],
        "wall_seconds_am_off": off["wall"],
        "paging_faults": pag_on["faults"],
        "paging_invalidations": pag_on["invalidations"],
    })

    speedup_c = off["cycles"] / on["cycles"]
    speedup_w = off["wall"] / on["wall"]
    report("E15", [
        "E15: associative memory (checking every reference, affordably)",
        f"  AM hit rate on locality workload       {on['hit_rate'] * 100:>7.1f}%",
        f"  simulated cycles, AM on                {on['cycles']:>8}",
        f"  simulated cycles, AM off               {off['cycles']:>8}"
        f"   ({speedup_c:.2f}x)",
        f"  best wall-clock, AM on  (ms)           {on['wall'] * 1e3:>8.2f}",
        f"  best wall-clock, AM off (ms)           {off['wall'] * 1e3:>8.2f}"
        f"   ({speedup_w:.2f}x)",
        f"  paging sweep faults (on == off)        {pag_on['faults']:>8}",
        f"  paging sweep invalidations             {pag_on['invalidations']:>8}",
    ])
