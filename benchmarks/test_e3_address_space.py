"""E3 — "The result of the removal is a reduction by a factor of ten in
the size of the protected code needed to manage the address space of a
process", plus the new segno-based file-system interface.

Measured: AST statement counts of the protected address-space
management code under each supervisor (legacy: the unsplit KST plus the
in-kernel naming apparatus; kernel: the split KST's common half plus
the minimal initiate/terminate gates), and a live workload run against
both interfaces to show the new one is functionally complete.
"""

from repro import MulticsSystem, kernel_config, legacy_config
from repro.kernel.kernel import build_kernel
from repro.kernel.legacy import build_legacy
from repro.kernel.metrics import address_space_code_size, address_space_reduction


_RUN_COUNTER = [0]


def address_space_workload(system):
    """Exercise initiation/termination/naming through either interface."""
    _RUN_COUNTER[0] += 1
    lib = f"lib{_RUN_COUNTER[0]}"
    session = system.login("Alice", "Crypto", "alice-pw")
    session.create_dir(lib)
    for i in range(8):
        session.create_segment(f"{lib}>seg{i}")
    segnos = [
        session.initiate(f"{session.home_path}>{lib}>seg{i}") for i in range(8)
    ]
    for segno in segnos:
        session.call("hcs_$terminate", segno)
    for i in range(8):
        session.delete(f"{lib}>seg{i}")
    session.delete(lib)
    return len(segnos)


def test_e3_protected_address_space_code(benchmark, report):
    legacy, kernel = build_legacy(), build_kernel()
    before = address_space_code_size(legacy)
    after = address_space_code_size(kernel)
    ratio = address_space_reduction(legacy, kernel)
    assert ratio > 3.0

    # Both interfaces support the same workload.
    kernel_system = MulticsSystem(kernel_config()).boot()
    kernel_system.register_user("Alice", "Crypto", "alice-pw")
    legacy_system = MulticsSystem(legacy_config()).boot()
    legacy_system.register_user("Alice", "Crypto", "alice-pw")
    assert address_space_workload(legacy_system) == 8
    result = benchmark(address_space_workload, kernel_system)
    assert result == 8

    report("E3", [
        "E3: protected address-space management code (paper: 10x reduction)",
        f"  legacy (unsplit KST + in-kernel naming) {before:>6} statements",
        f"  kernel (split KST common half)          {after:>6} statements",
        f"  measured reduction factor               {ratio:>6.1f}x",
        "  paper claim                               10.0x",
        "  note: Python compresses the boilerplate-heavy legacy PL/I side;",
        "  the direction and order of the reduction reproduce, the constant",
        "  does not (see EXPERIMENTS.md).",
    ])
