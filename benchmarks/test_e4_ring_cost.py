"""E4 — "calls from one ring to another now cost no more than calls
inside a ring" (6180 hardware rings), vs the 645 where cross-ring calls
were "quite expensive" — the fact that unlocked the removal programme.

Measured: cycle cost of in-ring vs cross-ring (gate) calls on the
simulated CPU under both ring implementations, and the end-to-end cost
of a fixed syscall-heavy workload on both machines.
"""

import time

from repro import MulticsSystem, kernel_config
from repro.config import CostModel, RingMode
from repro.hw.cpu import CPU, CodeSegment, Instruction as I, Op
from repro.hw.memory import MemoryLevel
from repro.hw.rings import kernel_gate_brackets, user_brackets
from repro.hw.segmentation import SDW, AccessMode, DescriptorSegment
from repro.obs import MetricsRegistry


class _Ctx:
    def __init__(self):
        self.dseg = DescriptorSegment()
        self.ring = 4
        self._codes = {}
        self._links = []

    def code_segment(self, segno):
        return self._codes[segno]

    def linkage(self):
        return self._links

    def stack_limit(self):
        return 4096


def build_context():
    """Segment 1: user code calling segment 2 (same ring) and segment 3
    (a ring-0 gate)."""
    ctx = _Ctx()
    callee = CodeSegment([I(Op.PUSHI, 1), I(Op.RET)], {"entry": 0})
    for segno, brackets, gates in (
        (1, user_brackets(4), None),
        (2, user_brackets(4), None),
        (3, kernel_gate_brackets(), frozenset({0})),
    ):
        ctx.dseg.add(SDW(segno=segno, access=AccessMode.RE, brackets=brackets,
                         page_table=[], bound=1, gates=gates))
        ctx._codes[segno] = callee
    ctx._codes[1] = CodeSegment(
        [I(Op.CALL, 2, 0, 0), I(Op.POP), I(Op.CALL, 3, 0, 0), I(Op.RET)],
        {"main": 0},
    )
    return ctx


def measure_call_cost(ring_mode: RingMode, target_segno: int) -> int:
    """Cycles of one call+return to target (in-ring seg 2, gate seg 3)."""
    ctx = build_context()
    ctx._codes[1] = CodeSegment([I(Op.CALL, target_segno, 0, 0), I(Op.RET)], {})
    cpu = CPU(MemoryLevel("core", 1, 1, 16), CostModel(), ring_mode, 16)
    cpu.execute(ctx, 1, 0)
    return cpu.cycles


def syscall_workload(system):
    """Gate-call cycles of a 50-syscall burst, read from the metrics
    registry's snapshot API (not from private process fields)."""
    session = system.login("Alice", "Crypto", "alice-pw")
    before = system.metrics.snapshot()
    for i in range(50):
        session.call("hcs_$get_root")
    after = system.metrics.snapshot()
    return MetricsRegistry.delta(before, after)["gate.cycles"]


def test_e4_cross_ring_call_cost(benchmark, report, export):
    costs = {}
    for mode in (RingMode.SOFTWARE_645, RingMode.HARDWARE_6180):
        in_ring = measure_call_cost(mode, 2)
        cross = measure_call_cost(mode, 3)
        costs[mode] = (in_ring, cross)

    in_645, cross_645 = costs[RingMode.SOFTWARE_645]
    in_6180, cross_6180 = costs[RingMode.HARDWARE_6180]
    assert cross_6180 == in_6180          # the paper's claim, exactly
    assert cross_645 > in_645 * 5         # the 645 pain

    # End-to-end: the same syscall workload on both machines.
    workload_cycles = {}
    last_system = None
    for mode in (RingMode.SOFTWARE_645, RingMode.HARDWARE_6180):
        system = MulticsSystem(kernel_config(ring_mode=mode)).boot()
        system.register_user("Alice", "Crypto", "alice-pw")
        if mode is RingMode.HARDWARE_6180:
            workload_cycles[mode] = benchmark(syscall_workload, system)
            last_system = system
        else:
            workload_cycles[mode] = syscall_workload(system)

    snap = last_system.metrics.snapshot()
    export("E4", snap, extra={
        "in_ring_645": in_645, "cross_ring_645": cross_645,
        "in_ring_6180": in_6180, "cross_ring_6180": cross_6180,
        "workload_cycles_645": workload_cycles[RingMode.SOFTWARE_645],
        "workload_cycles_6180": workload_cycles[RingMode.HARDWARE_6180],
    })
    assert snap["counters"]["gate.calls"] > 0

    report("E4", [
        "E4: ring-crossing cost (paper: 6180 cross-ring == in-ring call)",
        f"  645  in-ring call cycles               {in_645:>8}",
        f"  645  cross-ring (gate) call cycles     {cross_645:>8}"
        f"   ({cross_645 / in_645:.1f}x)",
        f"  6180 in-ring call cycles               {in_6180:>8}",
        f"  6180 cross-ring (gate) call cycles     {cross_6180:>8}   (1.0x)",
        f"  50-syscall workload on 645             {workload_cycles[RingMode.SOFTWARE_645]:>8} cycles",
        f"  50-syscall workload on 6180            {workload_cycles[RingMode.HARDWARE_6180]:>8} cycles",
    ])


def _timed_workload(tracing: bool, repeats: int = 5):
    """(simulated gate cycles, best wall-clock seconds) of the syscall
    workload with the tracer off or on."""
    best = float("inf")
    cycles = None
    for _ in range(repeats):
        system = MulticsSystem(kernel_config(tracing=tracing)).boot()
        system.register_user("Alice", "Crypto", "alice-pw")
        t0 = time.perf_counter()
        got = syscall_workload(system)
        best = min(best, time.perf_counter() - t0)
        assert cycles is None or cycles == got  # deterministic workload
        cycles = got
    return cycles, best, system


def test_e4_tracer_overhead(report):
    """The observability acceptance check: a disabled tracer must not
    perturb the simulation at all (identical simulated cycles), and
    enabled tracing must actually capture the hot-path spans."""
    cycles_off, wall_off, _ = _timed_workload(tracing=False)
    cycles_on, wall_on, traced = _timed_workload(tracing=True)

    # Simulated-cycle overhead of the instrumentation: exactly zero.
    assert cycles_off == cycles_on

    counts = traced.tracer.counts()
    assert counts.get("gate", 0) >= 50
    assert counts.get("ring_crossing", 0) >= 50

    ratio = wall_on / wall_off if wall_off else float("inf")
    report("E4b", [
        "E4b: tracer overhead on the 50-syscall workload",
        f"  simulated gate cycles, tracer off      {cycles_off:>8}",
        f"  simulated gate cycles, tracer on       {cycles_on:>8}   (identical)",
        f"  best wall-clock, tracer off (ms)       {wall_off * 1e3:>8.2f}",
        f"  best wall-clock, tracer on  (ms)       {wall_on * 1e3:>8.2f}"
        f"   ({ratio:.2f}x)",
        f"  spans captured when enabled            {len(traced.tracer.spans):>8}",
    ])
