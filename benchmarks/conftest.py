"""Shared reporting for the experiment benches.

Each bench computes its experiment's paper-vs-measured comparison and
registers it with :func:`report`; the rows are printed in the terminal
summary (so they survive pytest's output capture) in experiment order.
"""

from __future__ import annotations

import json
import pathlib

import pytest

_REPORTS: dict[str, list[str]] = {}


def pytest_collection_modifyitems(items):
    """Everything under benchmarks/ carries the ``bench`` marker, so
    tier-1 runs (testpaths = tests) and explicit ``-m "not bench"``
    selections stay fast without per-file boilerplate."""
    for item in items:
        item.add_marker(pytest.mark.bench)

#: Where benches export their metrics snapshots as JSON.  The schema
#: guard (scripts/check_bench_schema.py) validates everything here.
RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture
def report():
    """Register a report block: ``report("E1", ["row", ...])``."""

    def _report(experiment: str, lines: list[str]) -> None:
        _REPORTS[experiment] = list(lines)

    return _report


@pytest.fixture
def export():
    """Write a bench's metrics snapshot to ``results/<experiment>.json``.

    The document is the registry snapshot (schema-validated before it
    is written) plus an optional ``bench`` section of derived numbers.
    """

    def _export(experiment: str, snapshot: dict, extra: dict | None = None):
        from repro.obs import validate_snapshot

        errors = validate_snapshot(snapshot)
        assert errors == [], f"{experiment}: invalid snapshot: {errors}"
        doc = dict(snapshot)
        if extra is not None:
            doc["bench"] = extra
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{experiment.lower()}.json"
        path.write_text(json.dumps(doc, indent=2) + "\n")

    return _export


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _REPORTS:
        return
    write = terminalreporter.write_line
    write("")
    write("=" * 74)
    write("EXPERIMENT RESULTS (paper claim vs measured)")
    write("=" * 74)
    for experiment in sorted(_REPORTS):
        write("")
        for line in _REPORTS[experiment]:
            write(line)
    write("")


def fmt_row(label: str, *values: object) -> str:
    return f"  {label:<44}" + "  ".join(f"{v!s:>10}" for v in values)
