"""Shared reporting for the experiment benches.

Each bench computes its experiment's paper-vs-measured comparison and
registers it with :func:`report`; the rows are printed in the terminal
summary (so they survive pytest's output capture) in experiment order.
"""

from __future__ import annotations

import pytest

_REPORTS: dict[str, list[str]] = {}


@pytest.fixture
def report():
    """Register a report block: ``report("E1", ["row", ...])``."""

    def _report(experiment: str, lines: list[str]) -> None:
        _REPORTS[experiment] = list(lines)

    return _report


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _REPORTS:
        return
    write = terminalreporter.write_line
    write("")
    write("=" * 74)
    write("EXPERIMENT RESULTS (paper claim vs measured)")
    write("=" * 74)
    for experiment in sorted(_REPORTS):
        write("")
        for line in _REPORTS[experiment]:
            write(line)
    write("")


def fmt_row(label: str, *values: object) -> str:
    return f"  {label:<44}" + "  ".join(f"{v!s:>10}" for v in values)
