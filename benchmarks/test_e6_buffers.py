"""E6 — network input buffering: the infinite VM-backed buffer "is much
simpler than the old circular buffer which had to be used over and over
again, with attendant problems of old messages not being removed before
a complete circuit of the buffer was made."

Measured: message loss across a burst-size sweep (the crossover is the
ring capacity), and the size of each buffer implementation (the
simplification claim), on live NetworkAttachment instances.
"""

from repro.hw.clock import Simulator
from repro.hw.interrupts import InterruptController
from repro.io import buffers as buffers_module
from repro.io.buffers import CircularBuffer, InfiniteVMBuffer
from repro.io.network import NetworkAttachment, TrafficPattern
from repro.kernel.metrics import count_statements
from repro.obs import MetricsRegistry

CAPACITY = 8
BURSTS = [2, 4, 8, 16, 32, 64]


def deliver_burst(buffer, burst_size: int):
    """Deliver one burst into *buffer*; loss comes from the registry
    snapshot (``io.buffer.lost``), not from private attachment fields.
    Returns ``(lost, snapshot)``."""
    sim = Simulator()
    metrics = MetricsRegistry(clock=sim.clock)
    net = NetworkAttachment(
        sim, InterruptController(sim.clock), line=6, buffer=buffer,
        metrics=metrics,
    )
    TrafficPattern(burst_size=burst_size, burst_gap=0, n_bursts=1).schedule_into(net)
    sim.run()
    snap = metrics.snapshot()
    return snap["counters"]["io.buffer.lost"], snap


def sweep():
    rows = []
    last_snap = None
    for burst in BURSTS:
        lost_ring, _ = deliver_burst(CircularBuffer(CAPACITY), burst)
        lost_vm, last_snap = deliver_burst(InfiniteVMBuffer(), burst)
        rows.append((burst, lost_ring, lost_vm))
    return rows, last_snap


def test_e6_buffer_loss_sweep(benchmark, report, export):
    rows, snap = benchmark(sweep)

    export("E6", snap, extra={
        "capacity": CAPACITY,
        "sweep": [
            {"burst": b, "lost_circular": lr, "lost_infinite": lv}
            for b, lr, lv in rows
        ],
    })

    for burst, lost_ring, lost_vm in rows:
        assert lost_vm == 0
        assert lost_ring == max(0, burst - CAPACITY)  # lap losses

    ring_stmts = count_statements(CircularBuffer)
    vm_stmts = count_statements(InfiniteVMBuffer)

    lines = [
        "E6: network input buffers (paper: infinite VM buffer is simpler",
        "    and eliminates the complete-circuit overwrite problem)",
        f"  circular ring capacity: {CAPACITY} messages",
        "  burst size      lost (circular)   lost (infinite)",
    ]
    for burst, lost_ring, lost_vm in rows:
        lines.append(f"  {burst:>10} {lost_ring:>17} {lost_vm:>17}")
    lines.append(
        f"  implementation size: circular {ring_stmts} statements, "
        f"infinite {vm_stmts} statements"
    )
    report("E6", lines)
