#!/usr/bin/env python
"""Guard the bench-export schema.

Every benchmark that exports numbers writes a registry snapshot (plus a
``bench`` section of derived values) to ``benchmarks/results/*.json``.
This script validates each document against ``repro.obs``'s
:func:`validate_snapshot` — the single source of truth for the snapshot
shape — and exits non-zero on any violation, so a schema drift between
the registry and the exported artifacts fails loudly instead of
silently feeding stale-shaped JSON to downstream tooling.

Schema note: the ``meter.*`` and ``audit.*`` instruments added with the
metering plane extend the same ``repro.obs/v1`` shape — new names in
the existing counter/gauge tables, no version bump.  Chrome trace-event
documents (top-level ``traceEvents``, written by
``scripts/export_trace.py``) also live in the results directory; they
follow a different contract and are checked with that script's
validator instead.  Standalone timeline documents (schema
``repro.timeline/v1``, exported by the interval sampler) are checked
with :func:`repro.obs.validate_timeline`.

No result files is not an error: a fresh checkout has not run the
benches yet.  Usage::

    python scripts/check_bench_schema.py [results_dir]
"""

from __future__ import annotations

import json
import pathlib
import sys

sys.path.insert(
    0, str(pathlib.Path(__file__).resolve().parent.parent / "src")
)
sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))

from repro.obs import validate_snapshot, validate_timeline  # noqa: E402


def check_file(path: pathlib.Path) -> list[str]:
    """Violations for one exported result file (empty list = valid)."""
    try:
        doc = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        return [f"unreadable: {exc}"]
    if isinstance(doc, dict) and "traceEvents" in doc:
        from export_trace import validate as validate_trace

        return validate_trace(path)
    if isinstance(doc, dict) and doc.get("schema") == "repro.timeline/v1":
        # Standalone timeline documents (sampler exports) carry their
        # own schema tag and validator.
        return validate_timeline(doc)
    # validate_snapshot knows the optional ``bench`` section of derived
    # numbers, so the merged document is checked as a whole.
    return validate_snapshot(doc)


def main(argv: list[str]) -> int:
    default = pathlib.Path(__file__).resolve().parent.parent / "benchmarks" / "results"
    results_dir = pathlib.Path(argv[1]) if len(argv) > 1 else default
    files = sorted(results_dir.glob("*.json")) if results_dir.is_dir() else []
    if not files:
        print(f"check_bench_schema: no result files under {results_dir}")
        return 0
    failed = 0
    for path in files:
        errors = check_file(path)
        if errors:
            failed += 1
            for error in errors:
                print(f"{path.name}: {error}")
        else:
            print(f"{path.name}: ok")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
