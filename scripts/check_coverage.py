#!/usr/bin/env python
"""Coverage gate for the tier-1 suite.

Runs ``pytest`` under coverage measurement and fails when line coverage
of ``src/repro`` drops below the checked-in threshold
(``[tool.coverage.report] fail_under`` in ``pyproject.toml``).  The
measurement backend is whatever the environment provides:

* ``pytest-cov`` installed -> ``pytest --cov`` with the configured
  threshold enforced by the plugin;
* bare ``coverage`` installed -> ``coverage run -m pytest`` followed by
  ``coverage report --fail-under``;
* neither installed -> the gate **degrades gracefully**: it prints why
  it cannot measure and exits 0.  The tier-1 tests themselves still run
  (so a missing plugin never masks a test failure), but coverage is
  only enforced where the tooling exists.  Nothing is ever installed by
  this script.

Usage::

    python scripts/check_coverage.py [extra pytest args...]
"""

from __future__ import annotations

import importlib.util
import os
import pathlib
import subprocess
import sys

_ROOT = pathlib.Path(__file__).resolve().parent.parent


def configured_threshold() -> float:
    """The checked-in floor from pyproject.toml (single source of truth)."""
    pyproject = _ROOT / "pyproject.toml"
    try:
        import tomllib

        doc = tomllib.loads(pyproject.read_text())
        return float(doc["tool"]["coverage"]["report"]["fail_under"])
    except Exception:
        # Pre-3.11 fallback: the one key this script needs.
        import re

        match = re.search(r"^fail_under\s*=\s*([0-9.]+)",
                          pyproject.read_text(), re.MULTILINE)
        if match is None:
            raise SystemExit("check_coverage: no fail_under in pyproject.toml")
        return float(match.group(1))


def have(module: str) -> bool:
    return importlib.util.find_spec(module) is not None


def run(cmd: list[str]) -> int:
    print(f"check_coverage: $ {' '.join(cmd)}", flush=True)
    env = dict(os.environ)
    src = str(_ROOT / "src")
    existing = env.get("PYTHONPATH", "")
    env["PYTHONPATH"] = src + (os.pathsep + existing if existing else "")
    return subprocess.call(cmd, cwd=_ROOT, env=env)


def main(argv: list[str]) -> int:
    threshold = configured_threshold()
    extra = argv[1:]
    pytest_args = ["tests", *extra]

    if have("pytest_cov"):
        return run([
            sys.executable, "-m", "pytest",
            "--cov=repro", "--cov-report=term-missing:skip-covered",
            f"--cov-fail-under={threshold}", *pytest_args,
        ])

    if have("coverage"):
        code = run([sys.executable, "-m", "coverage", "run",
                    "--source=repro", "-m", "pytest", *pytest_args])
        if code != 0:
            return code
        return run([sys.executable, "-m", "coverage", "report",
                    f"--fail-under={threshold}"])

    print(
        "check_coverage: neither pytest-cov nor coverage is installed; "
        f"running the tier-1 suite without the {threshold:.0f}% gate "
        "(install the 'test' extra to enforce it)."
    )
    code = run([sys.executable, "-m", "pytest", *pytest_args])
    if code != 0:
        return code
    print("check_coverage: tests passed; coverage not measured (tooling "
          "absent), gate skipped.")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
