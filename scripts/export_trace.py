#!/usr/bin/env python
"""Export a Chrome trace-event JSON file from a traced run.

Default mode runs the E5-style page-fault storm with tracing on and
writes ``Tracer.to_chrome_trace()``'s document — load it in Perfetto
(https://ui.perfetto.dev) or ``chrome://tracing`` to see gate calls,
page-fault services, ring crossings, interrupts, and retries laid out
on one lane per simulated process.

``--counters`` runs the same storm with the interval timeline enabled
and folds its series into the document as Perfetto counter tracks
("C" events — one graph per metric series) plus instant markers for
SLO breaches, so the run's time-resolved telemetry renders above the
span lanes.

``--validate [file]`` instead round-trips a trace file through
``json.loads`` and checks the trace-event contract every consumer
relies on: a ``traceEvents`` list whose entries carry ``name``, ``ph``,
``ts``, ``pid``, ``tid`` (and ``dur`` for complete "X" events; a ``ts``
for counter "C" and instant "i" events).

Usage::

    python scripts/export_trace.py [--counters] [output.json]
    python scripts/export_trace.py --validate [trace.json]
"""

from __future__ import annotations

import json
import pathlib
import sys

_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(_ROOT / "src"))

_DEFAULT_OUT = _ROOT / "benchmarks" / "results" / "trace_e5.json"

#: Keys every trace event must carry; complete "X" events additionally
#: need ts and dur, counter "C" and instant "i" events need ts
#: (metadata "M" events carry no timestamp).
REQUIRED_KEYS = ("name", "ph", "pid", "tid")


def traced_storm(counters: bool = False) -> dict:
    """Run a small traced storm on a booted system; return the trace.

    With ``counters`` the system also runs the interval timeline
    sampler (polled between scheduler quanta via the simulator run
    loop's natural clock advances — here, one forced flush at the end
    plus interval polls during the storm), and the trace document
    carries its series as counter tracks.
    """
    from repro.config import SystemConfig
    from repro.proc.ipc import Charge
    from repro.proc.process import Process
    from repro.system import MulticsSystem

    config = SystemConfig(
        page_size=16, core_frames=8, bulk_frames=12, disk_frames=512,
        n_processors=2, n_virtual_processors=16, quantum=5000,
        tracing=True,
        timeline={"interval": 2000} if counters else None,
    )
    config.validate()
    system = MulticsSystem(config).boot()
    system.register_user("Alice", "Crypto", "alice-pw")
    alice = system.login("Alice", "Crypto", "alice-pw")
    services = system.services
    segno = alice.create_segment("storm", n_pages=12)
    aseg = services.ast.get(alice.process.dseg.get(segno).uid)
    pc = services.page_control

    def worker(proc):
        for _sweep in range(2):
            for page in range(12):
                yield from pc.touch(proc, aseg, page)
                yield Charge(40)
                if system.timeline is not None:
                    system.timeline.poll()

    for i in range(4):
        system.add_process(Process(f"w{i}", body=worker, ring=4))
    system.run()
    timeline = None
    if system.timeline is not None:
        system.timeline.poll(force=True)
        timeline = system.timeline_document()
    return system.tracer.to_chrome_trace(timeline=timeline)


def validate(path: pathlib.Path) -> list[str]:
    """Violations of the trace-event contract (empty list = valid)."""
    try:
        doc = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        return [f"unreadable: {exc}"]
    if not isinstance(doc, dict) or not isinstance(
        doc.get("traceEvents"), list
    ):
        return ["document must be an object with a traceEvents list"]
    errors = []
    for i, event in enumerate(doc["traceEvents"]):
        if not isinstance(event, dict):
            errors.append(f"event {i}: not an object")
            continue
        missing = [k for k in REQUIRED_KEYS if k not in event]
        if event.get("ph") == "X":
            missing += [k for k in ("ts", "dur") if k not in event]
        elif event.get("ph") in ("C", "i"):
            missing += [k for k in ("ts",) if k not in event]
        if missing:
            errors.append(f"event {i}: missing {missing}")
    if not any(e.get("ph") == "X" for e in doc["traceEvents"]
               if isinstance(e, dict)):
        errors.append("no complete (ph=X) events — empty trace?")
    return errors


def main(argv: list[str]) -> int:
    if argv[1:2] == ["--validate"]:
        path = pathlib.Path(argv[2]) if len(argv) > 2 else _DEFAULT_OUT
        errors = validate(path)
        if errors:
            for error in errors:
                print(f"{path.name}: {error}", file=sys.stderr)
            return 1
        print(f"export_trace: {path} is a valid chrome trace")
        return 0

    args = list(argv[1:])
    counters = "--counters" in args
    if counters:
        args.remove("--counters")
    unknown = [a for a in args if a.startswith("-")]
    if unknown or len(args) > 1:
        print(__doc__.split("Usage::", 1)[1].strip(), file=sys.stderr)
        return 2
    out_path = pathlib.Path(args[0]) if args else _DEFAULT_OUT
    doc = traced_storm(counters=counters)
    out_path.parent.mkdir(exist_ok=True)
    out_path.write_text(json.dumps(doc, indent=1) + "\n")
    n_spans = sum(1 for e in doc["traceEvents"] if e["ph"] == "X")
    n_counters = sum(1 for e in doc["traceEvents"] if e["ph"] == "C")
    n_lanes = sum(1 for e in doc["traceEvents"]
                  if e["ph"] == "M" and e["name"] == "thread_name")
    extra = f", {n_counters} counter points" if counters else ""
    print(f"export_trace: wrote {out_path} "
          f"({n_spans} events on {n_lanes} lanes{extra})")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
