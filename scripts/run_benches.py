#!/usr/bin/env python
"""Run the dynamic benches headlessly and export ``BENCH_<pr>.json``.

Collects the numbers a CI job or a reviewer wants without the pytest
benchmark machinery: wall-clock seconds, simulated cycles,
associative-memory hit rates, metering/audit attribution, SMP
throughput, chaos-storm containment, and workload-engine throughput
for the hot-path workloads (E4 ring crossings, E5 page-fault storm,
E15 associative memory, E16 metering & audit, E17 SMP lockstep, E18
workload engine, E19 sharded runs, E20 timeline plane, E21
specialized kernels, R2 chaos storm).  The document is the *merged*
export — a real metrics snapshot (schema ``repro.obs/v1``) plus a
``bench`` section of derived numbers — validated as written, and
written to ``benchmarks/results/BENCH_<pr>.json`` so
``scripts/check_bench_schema.py`` guards it like every other export.

The export name defaults to ``BENCH_{DEFAULT_PR}.json``; override the
PR tag with ``--pr prN`` or the ``BENCH_PR`` environment variable, or
give an explicit output path.

``--only`` selects a subset by experiment id (comma-separated) — the
same workloads pytest selects with the ``bench`` marker
(``pytest -m bench benchmarks/``); this runner just skips the
collection machinery.  An unknown or empty id list is an error that
names the known ids, never a silent no-op run.  ``--list`` prints the
known ids and exits; ``--quick`` skips the 10k/100k-user legs of E18,
E19, and E20 and trains E21's specialized kernels on a smaller
population, so a local full sweep stays interactive (quick runs never
assert the scale-dependent speedup floors).

Usage::

    python scripts/run_benches.py [output.json] [--pr pr8]
                                  [--only E16[,E5,...]] [--quick]
    python scripts/run_benches.py --list
"""

from __future__ import annotations

import json
import os
import pathlib
import sys
import time

_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(_ROOT / "src"))
sys.path.insert(0, str(_ROOT / "benchmarks"))

from repro.config import PageControlKind, RingMode  # noqa: E402
from repro.obs import validate_snapshot  # noqa: E402

from test_e4_ring_cost import measure_call_cost  # noqa: E402
from test_e5_page_control import run_storm, summarize  # noqa: E402
from test_e15_assoc_memory import (  # noqa: E402
    _locality_workload,
    _paging_workload,
)
from test_e16_metering import combined_workload  # noqa: E402
from test_e17_smp import bench_numbers as smp_bench_numbers  # noqa: E402
from test_e18_workload import bench_numbers as workload_bench_numbers  # noqa: E402
from test_e19_sharded import bench_numbers as sharded_bench_numbers  # noqa: E402
from test_e20_timeline import bench_numbers as timeline_bench_numbers  # noqa: E402
from test_e21_specialize import bench_numbers as specialize_bench_numbers  # noqa: E402
from test_r2_chaos import bench_numbers as chaos_bench_numbers  # noqa: E402

#: Experiment ids this runner knows, in execution order.  These are the
#: same workloads pytest runs under the ``bench`` marker.
BENCH_IDS = ("E4", "E5", "E15", "E16", "E17", "E18", "E19", "E20", "E21",
             "R2")

#: The PR tag this checkout exports by default — the one place to bump
#: per PR (``--pr`` / ``BENCH_PR`` override it at run time).
DEFAULT_PR = "pr10"


def bench_e4() -> dict:
    return {
        "in_ring_645": measure_call_cost(RingMode.SOFTWARE_645, 2),
        "cross_ring_645": measure_call_cost(RingMode.SOFTWARE_645, 3),
        "in_ring_6180": measure_call_cost(RingMode.HARDWARE_6180, 2),
        "cross_ring_6180": measure_call_cost(RingMode.HARDWARE_6180, 3),
    }


def bench_e5() -> dict:
    out = {}
    for kind in (PageControlKind.SEQUENTIAL, PageControlKind.PARALLEL):
        t0 = time.perf_counter()
        summary = summarize(run_storm(kind))
        out[kind.value] = {
            "wall_seconds": round(time.perf_counter() - t0, 4),
            "faults": summary["faults"],
            "mean_latency_cycles": summary["mean_latency"],
            "elapsed_cycles": summary["elapsed"],
        }
    return out


def bench_e15() -> tuple[dict, dict]:
    """(derived numbers, final metrics snapshot of the AM-on system)."""
    on = _locality_workload(am_enabled=True)
    off = _locality_workload(am_enabled=False)
    paging = _paging_workload(am_enabled=True)
    derived = {
        "am_hit_rate": round(on["hit_rate"], 4),
        "am_hits": on["hits"],
        "am_misses": on["misses"],
        "cycles_am_on": on["cycles"],
        "cycles_am_off": off["cycles"],
        "cycle_speedup": round(off["cycles"] / on["cycles"], 3),
        "wall_seconds_am_on": round(on["wall"], 6),
        "wall_seconds_am_off": round(off["wall"], 6),
        "wall_speedup": round(off["wall"] / on["wall"], 3),
        "paging_faults": paging["faults"],
        "paging_invalidations": paging["invalidations"],
    }
    return derived, on["system"].metrics.snapshot()


def bench_e16() -> tuple[dict, dict]:
    """(derived numbers, final metrics snapshot of the metered system)."""
    t0 = time.perf_counter()
    system = combined_workload(metering=True)
    unmetered = combined_workload(metering=False)
    meters = system.meters
    trail_doc = json.loads(system.audit_trail.to_json())
    log_denials = sum(
        1 for r in system.audit.records if r.outcome != "granted"
    )
    trail_denials = sum(
        1 for r in trail_doc["records"] if r["decision"] != "granted"
    )
    derived = {
        "wall_seconds": round(time.perf_counter() - t0, 4),
        "coverage": round(meters.coverage(), 4),
        "attributed_cycles": meters.attributed_cycles(),
        "total_cycles": meters.total_cycles(),
        "simulated_clock_metered": system.clock.now,
        "simulated_clock_unmetered": unmetered.clock.now,
        "log_denials": log_denials,
        "trail_denials": trail_denials,
        "trail_dropped": trail_doc["dropped"],
    }
    return derived, system.metrics.snapshot()


def _boot_snapshot() -> dict:
    """Fallback snapshot when no snapshot-producing bench is selected."""
    from repro import kernel_config
    from repro.system import MulticsSystem

    return MulticsSystem(kernel_config()).boot().metrics.snapshot()


def main(argv: list[str]) -> int:
    args = list(argv[1:])
    if "--list" in args:
        for bench_id in BENCH_IDS:
            print(bench_id)
        return 0
    quick = "--quick" in args
    if quick:
        args.remove("--quick")
    pr = os.environ.get("BENCH_PR", DEFAULT_PR)
    if "--pr" in args:
        at = args.index("--pr")
        if at + 1 >= len(args) or not args[at + 1].strip():
            print("run_benches: --pr needs a tag (e.g. pr7)",
                  file=sys.stderr)
            return 2
        pr = args[at + 1].strip()
        del args[at:at + 2]
    only: set[str] | None = None
    if "--only" in args:
        at = args.index("--only")
        if at + 1 >= len(args):
            print("run_benches: --only needs an id list (e.g. E16)",
                  file=sys.stderr)
            return 2
        only = {part.strip().upper()
                for part in args[at + 1].split(",") if part.strip()}
        del args[at:at + 2]
        if not only:
            print("run_benches: --only selected no benches "
                  f"(known: {', '.join(BENCH_IDS)})", file=sys.stderr)
            return 2
        unknown = only - set(BENCH_IDS)
        if unknown:
            print(f"run_benches: unknown bench ids {sorted(unknown)} "
                  f"(known: {', '.join(BENCH_IDS)})", file=sys.stderr)
            return 2

    default = _ROOT / "benchmarks" / "results" / f"BENCH_{pr}.json"
    out_path = pathlib.Path(args[0]) if args else default
    selected = [b for b in BENCH_IDS if only is None or b in only]

    t0 = time.perf_counter()
    bench: dict = {}
    snapshot: dict | None = None
    e15 = e16 = e17 = e18 = e19 = e20 = e21 = r2 = None
    if "E4" in selected:
        bench["e4_ring_cost"] = bench_e4()
    if "E5" in selected:
        bench["e5_page_storm"] = bench_e5()
    if "E15" in selected:
        e15, snapshot = bench_e15()
        bench["e15_assoc_memory"] = e15
    if "E16" in selected:
        e16, snapshot = bench_e16()
        bench["e16_metering_audit"] = e16
    if "E17" in selected:
        e17, snapshot = smp_bench_numbers()
        bench["e17_smp"] = e17
    if "E18" in selected:
        e18, snapshot = workload_bench_numbers(quick=quick)
        bench["e18_workload"] = e18
    if "E19" in selected:
        e19, snapshot = sharded_bench_numbers(quick=quick)
        bench["e19_sharded"] = e19
    if "E20" in selected:
        e20, snapshot = timeline_bench_numbers(quick=quick)
        bench["e20_timeline"] = e20
    if "E21" in selected:
        e21, snapshot = specialize_bench_numbers(quick=quick)
        bench["e21_specialize"] = e21
    if "R2" in selected:
        r2, snapshot = chaos_bench_numbers()
        bench["r2_chaos"] = r2
    if snapshot is None:
        snapshot = _boot_snapshot()
    bench["total_wall_seconds"] = round(time.perf_counter() - t0, 3)

    doc = dict(snapshot)
    doc["bench"] = bench
    # Validate the document actually written (snapshot + bench
    # section), not just the snapshot half of it.
    errors = validate_snapshot(doc)
    if errors:
        for error in errors:
            print(f"run_benches: invalid export: {error}", file=sys.stderr)
        return 1
    out_path.parent.mkdir(parents=True, exist_ok=True)
    out_path.write_text(json.dumps(doc, indent=2) + "\n")
    print(f"run_benches: wrote {out_path} ({', '.join(selected)})")
    if e15 is not None:
        hit = e15["am_hit_rate"] * 100
        print(f"  AM hit rate {hit:.1f}%  "
              f"cycles x{e15['cycle_speedup']}  wall x{e15['wall_speedup']}")
    if e16 is not None:
        print(f"  metering coverage {e16['coverage']:.2%}  "
              f"clock {e16['simulated_clock_metered']}/"
              f"{e16['simulated_clock_unmetered']}  "
              f"denials {e16['log_denials']}/{e16['trail_denials']} "
              f"(dropped {e16['trail_dropped']})")
    if e17 is not None:
        print(f"  SMP speedup x{e17['speedup_2cpu']} at 2 CPUs  "
              f"1-CPU identity {e17['one_cpu_identity']}  "
              f"replay identical {e17['deterministic_replay']}")
    if e18 is not None:
        scale = "10k" if "users_10k" in e18 else "1k"
        print(f"  workload: {e18.get('users_10k', e18['users_1k'])} users  "
              f"fast-path wall x{e18['wall_speedup_1k']}  "
              f"{e18[f'cycles_per_sec_{scale}']:.0f} cycles/s  "
              f"{e18[f'users_per_sec_{scale}']:.1f} users/s  "
              f"equivalent {e18['equivalent']}")
    if e19 is not None:
        big = (f"  100k-user leg: {e19['users_per_sec_100k']:.1f} users/s "
               f"over {e19['shards_100k']} shards ({e19['mode_100k']})"
               if "users_100k" in e19 else "  (quick: 100k leg skipped)")
        print(f"  sharded: x{e19['speedup_2shard']} at 2 shards, "
              f"x{e19['speedup_4shard']} at 4 "
              f"({e19['cores']} cores, floor "
              f"{'asserted' if e19['speedup_asserted'] else 'waived'})  "
              f"1-shard equivalent {e19['one_shard_equivalent']}  "
              f"deterministic {e19['deterministic_merge']}")
        print(big)
    if e20 is not None:
        print(f"  timeline: overhead x{e20['overhead_wall_overhead_ratio']} "
              f"wall (sim identical {e20['overhead_clock_identical']})  "
              f"{e20['chaos_breaches']} breaches confined "
              f"{e20['chaos_breaches_confined']}  "
              f"busy density {e20['chaos_busy_density_storm']} storm / "
              f"{e20['chaos_busy_density_after']} recovered")
        print(f"  timeline determinism: same-seed "
              f"{e20['same_seed_identical']}  sharded "
              f"{e20['sharded_identical']}  1-shard == driver "
              f"{e20['one_shard_matches_driver']}")
    if e21 is not None:
        print(f"  specialize: max gate cut "
              f"{e21['max_gate_reduction']:.0%} of "
              f"{e21['gates_total']} gates  "
              f"E11 {e21['pen_successes_total']}/"
              f"{e21['pen_attempted_total']} attacks  "
              f"identical {e21['all_identical']}  "
              f"deny-complete {e21['all_deny_complete']}  "
              f"{e21['orchestrator_tenants']} tenants "
              f"({e21['orchestrator_cross_denials']} cross denials)")
    if r2 is not None:
        print(f"  chaos: {r2['chaos_events']} events / "
              f"{r2['faults_injected']} faults  "
              f"delivered {r2['messages_delivered']}/{r2['messages_sent']}  "
              f"salvage clean {r2['salvage_clean']}  "
              f"replay identical {r2['deterministic_replay']}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
