#!/usr/bin/env python
"""Run the dynamic benches headlessly and export ``BENCH_pr3.json``.

Collects the numbers a CI job or a reviewer wants without the pytest
benchmark machinery: wall-clock seconds, simulated cycles, and
associative-memory hit rates for the hot-path workloads (E4 ring
crossings, E5 page-fault storm, E15 associative memory).  The document
is a real metrics snapshot (schema ``repro.obs/v1``, validated before
writing) with a ``bench`` section of derived numbers, written to
``benchmarks/results/BENCH_pr3.json`` so
``scripts/check_bench_schema.py`` guards it like every other export.

Usage::

    python scripts/run_benches.py [output.json]
"""

from __future__ import annotations

import json
import pathlib
import sys
import time

_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(_ROOT / "src"))
sys.path.insert(0, str(_ROOT / "benchmarks"))

from repro.config import PageControlKind, RingMode  # noqa: E402
from repro.obs import validate_snapshot  # noqa: E402

from test_e4_ring_cost import measure_call_cost  # noqa: E402
from test_e5_page_control import run_storm, summarize  # noqa: E402
from test_e15_assoc_memory import (  # noqa: E402
    _locality_workload,
    _paging_workload,
)


def bench_e4() -> dict:
    return {
        "in_ring_645": measure_call_cost(RingMode.SOFTWARE_645, 2),
        "cross_ring_645": measure_call_cost(RingMode.SOFTWARE_645, 3),
        "in_ring_6180": measure_call_cost(RingMode.HARDWARE_6180, 2),
        "cross_ring_6180": measure_call_cost(RingMode.HARDWARE_6180, 3),
    }


def bench_e5() -> dict:
    out = {}
    for kind in (PageControlKind.SEQUENTIAL, PageControlKind.PARALLEL):
        t0 = time.perf_counter()
        summary = summarize(run_storm(kind))
        out[kind.value] = {
            "wall_seconds": round(time.perf_counter() - t0, 4),
            "faults": summary["faults"],
            "mean_latency_cycles": summary["mean_latency"],
            "elapsed_cycles": summary["elapsed"],
        }
    return out


def bench_e15() -> tuple[dict, dict]:
    """(derived numbers, final metrics snapshot of the AM-on system)."""
    on = _locality_workload(am_enabled=True)
    off = _locality_workload(am_enabled=False)
    paging = _paging_workload(am_enabled=True)
    derived = {
        "am_hit_rate": round(on["hit_rate"], 4),
        "am_hits": on["hits"],
        "am_misses": on["misses"],
        "cycles_am_on": on["cycles"],
        "cycles_am_off": off["cycles"],
        "cycle_speedup": round(off["cycles"] / on["cycles"], 3),
        "wall_seconds_am_on": round(on["wall"], 6),
        "wall_seconds_am_off": round(off["wall"], 6),
        "wall_speedup": round(off["wall"] / on["wall"], 3),
        "paging_faults": paging["faults"],
        "paging_invalidations": paging["invalidations"],
    }
    return derived, on["system"].metrics.snapshot()


def main(argv: list[str]) -> int:
    default = _ROOT / "benchmarks" / "results" / "BENCH_pr3.json"
    out_path = pathlib.Path(argv[1]) if len(argv) > 1 else default

    t0 = time.perf_counter()
    e15, snapshot = bench_e15()
    doc = dict(snapshot)
    doc["bench"] = {
        "e4_ring_cost": bench_e4(),
        "e5_page_storm": bench_e5(),
        "e15_assoc_memory": e15,
    }
    doc["bench"]["total_wall_seconds"] = round(time.perf_counter() - t0, 3)

    errors = validate_snapshot(snapshot)
    if errors:
        for error in errors:
            print(f"run_benches: invalid snapshot: {error}", file=sys.stderr)
        return 1
    out_path.parent.mkdir(exist_ok=True)
    out_path.write_text(json.dumps(doc, indent=2) + "\n")
    print(f"run_benches: wrote {out_path}")
    hit = e15["am_hit_rate"] * 100
    print(f"  AM hit rate {hit:.1f}%  "
          f"cycles x{e15['cycle_speedup']}  wall x{e15['wall_speedup']}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
